//! GraphMixer (Cong et al., ICLR 2023): "do we really need complicated
//! model architectures for temporal networks?" — an all-MLP design.
//!
//! The link encoder tokenizes each recent edge as `[x_ij ‖ φ_t(Δt)]` with a
//! *fixed* time encoding and mixes tokens with an MLP-Mixer block; the node
//! encoder is a mean over recent neighbor features. Both summaries feed an
//! MLP head — no attention, no recurrence.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, Linear, Matrix, MixerBlock, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{stack_targets, Baseline};

/// The GraphMixer baseline.
pub struct GraphMixerModel {
    proj: Linear,
    mixer: MixerBlock,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    channels: usize,
}

impl GraphMixerModel {
    /// Builds GraphMixer for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let channels = cfg.hidden;
        Self {
            proj: Linear::new(edge_feat_dim + cfg.time_dim, channels, rng),
            mixer: MixerBlock::new(cfg.k, channels, rng),
            decoder: Mlp::new(
                &[channels + 2 * feat_dim, cfg.hidden, out_dim],
                Activation::Relu,
                rng,
            ),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            channels,
        }
    }

    /// Edge tokens `[x_ij ‖ φ_t(Δt)]`, zero-padded to `k`, plus lens and the
    /// masked mean of neighbor node features (GraphMixer's node encoder).
    fn tokenize(&self, refs: &[&CapturedQuery]) -> (Matrix, Vec<usize>, Matrix) {
        let width = self.edge_feat_dim + self.time_enc.dim();
        let mut tokens = Matrix::zeros(refs.len() * self.k, width);
        let mut lens = vec![0usize; refs.len()];
        let mut nbr_mean = Matrix::zeros(refs.len(), self.feat_dim);
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(self.k);
            lens[qi] = len;
            let skip = q.neighbors.len() - len;
            for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
                let row = tokens.row_mut(qi * self.k + slot);
                row[..self.edge_feat_dim].copy_from_slice(&nb.edge_feat);
                row[self.edge_feat_dim..].copy_from_slice(&self.time_enc.encode(q.time - nb.time));
            }
            if len > 0 {
                let inv = 1.0 / len as f32;
                for nb in &q.neighbors[skip..] {
                    for (o, &v) in nbr_mean.row_mut(qi).iter_mut().zip(&nb.feat) {
                        *o += v * inv;
                    }
                }
            }
        }
        (tokens, lens, nbr_mean)
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (Matrix, nn::LinearCache, nn::MixerCache, nn::MlpCache) {
        let b = refs.len();
        let (tokens, _lens, nbr_mean) = self.tokenize(refs);
        let (x, proj_cache) = self.proj.forward(&tokens);
        let (y, mixer_cache) = self.mixer.forward(&x);
        // GraphMixer mean-pools over all k (zero-padded) token positions.
        let mut pooled = Matrix::zeros(b, self.channels);
        let inv = 1.0 / self.k as f32;
        for qi in 0..b {
            for slot in 0..self.k {
                let src = y.row(qi * self.k + slot);
                for (o, &v) in pooled.row_mut(qi).iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
        let target = stack_targets(refs, self.feat_dim);
        let concat = Matrix::concat_cols(&[&pooled, &nbr_mean, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, proj_cache, mixer_cache, dec_cache)
    }

    fn step(&mut self) {
        let Self { proj, mixer, decoder, opt, .. } = self;
        let mut params = proj.params_mut();
        params.extend(mixer.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for GraphMixerModel {
    fn name(&self) -> &'static str {
        "graphmixer"
    }

    fn num_params(&self) -> usize {
        self.proj.num_params() + Parameterized::num_params(&self.mixer) + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let b = refs.len();
        let (logits, proj_cache, mixer_cache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dpooled = dconcat.slice_cols(0, self.channels);
        // Spread the pooled gradient uniformly over all k token positions.
        let inv = 1.0 / self.k as f32;
        let mut dy = Matrix::zeros(b * self.k, self.channels);
        for qi in 0..b {
            for slot in 0..self.k {
                let dst = dy.row_mut(qi * self.k + slot);
                for (o, &v) in dst.iter_mut().zip(dpooled.row(qi)) {
                    *o = v * inv;
                }
            }
        }
        let dx = self.mixer.backward(&mixer_cache, &dy);
        self.proj.backward(&proj_cache, &dx);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> GraphMixerModel {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(3);
        GraphMixerModel::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        // GraphMixer's edge tokens carry no neighbor node features, but the
        // node encoder (neighbor mean) does — the toy task is solvable.
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uses_masked_mean_helper_consistently() {
        // Sanity: the node encoder equals common::masked_mean over feats.
        let m = model();
        let (queries, _) = crate::common::test_support::toy_queries(2, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let (_, lens, nbr_mean) = m.tokenize(&refs);
        // Build a (B*k, fd) matrix of neighbor feats for the helper.
        let mut feats = Matrix::zeros(refs.len() * m.k, 4);
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(m.k);
            let skip = q.neighbors.len() - len;
            for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
                feats.set_row(qi * m.k + slot, &nb.feat);
            }
        }
        let expected = crate::common::masked_mean(&feats, &lens, m.k);
        for i in 0..nbr_mean.len() {
            assert!((nbr_mean.data()[i] - expected.data()[i]).abs() < 1e-6);
        }
    }
}
