//! TGN (Rossi et al., 2020): a per-node memory module updated by a GRU,
//! read out with temporal graph attention.
//!
//! The defining composition is memory → embedding: the GRU digests the
//! node's recent messages into a memory vector, which then *queries* an
//! attention layer over the same recent neighbors to produce the embedding.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, CrossAttention, FixedTimeEncode, GruCell, Matrix, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{pack_tokens, stack_targets, Baseline};
use crate::recurrent::{gru_unroll, gru_unroll_backward, pack_tokens_right};

/// The TGN baseline.
pub struct Tgn {
    memory: GruCell,
    attn: CrossAttention,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

impl Tgn {
    /// Builds TGN for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let width = feat_dim + edge_feat_dim + cfg.time_dim;
        Self {
            memory: GruCell::new(width, dh, rng),
            attn: CrossAttention::new(dh + feat_dim, width, dh, 2, rng),
            decoder: Mlp::new(&[dh, dh, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (
        Matrix,
        Matrix,
        crate::recurrent::UnrollCache,
        nn::CrossAttentionCache,
        nn::MlpCache,
    ) {
        let b = refs.len();
        let (tokens_r, _) =
            pack_tokens_right(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let (mem, ucache) = gru_unroll(&self.memory, &tokens_r, b, self.k);
        let (tokens_l, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let target = stack_targets(refs, self.feat_dim);
        let query = Matrix::concat_cols(&[&mem, &target]);
        let (attn_out, attn_cache) = self.attn.forward(&query, &tokens_l, &lens, self.k);
        let (logits, dec_cache) = self.decoder.forward(&attn_out);
        (logits, attn_out, ucache, attn_cache, dec_cache)
    }

    fn step(&mut self) {
        let Self { memory, attn, decoder, opt, .. } = self;
        let mut params = memory.params_mut();
        params.extend(attn.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for Tgn {
    fn name(&self) -> &'static str {
        "tgn"
    }

    fn num_params(&self) -> usize {
        Parameterized::num_params(&self.memory)
            + self.attn.num_params()
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (logits, _attn_out, ucache, attn_cache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dattn_out = self.decoder.backward(&dec_cache, &dlogits);
        let (dquery, _dkv) = self.attn.backward(&attn_cache, &dattn_out);
        // query = [memory ‖ target]: only the memory part backpropagates.
        let dmem = dquery.slice_cols(0, dquery.cols() - self.feat_dim);
        gru_unroll_backward(&mut self.memory, &ucache, &dmem);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> Tgn {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(2);
        Tgn::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.1; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }
}
