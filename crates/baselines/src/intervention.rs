//! The intervention mechanism shared by the DTDG-based shift-robust
//! baselines (DIDA, SLID).
//!
//! Both methods disentangle each sample's history into an *invariant*
//! summary `z_I` and a *variant* summary `z_V`, then train so the prediction
//! is insensitive to interventions on the variant part: the variant
//! summaries are permuted across the batch (each sample receives another
//! sample's variant pattern) and the objective adds the mean and the
//! variance of the intervened risks,
//!
//! ```text
//! L = L_task + λ_mean · mean_p L_p + λ_var · var_p L_p ,
//! ```
//!
//! following the invariance principle of DIDA (Zhang et al., NeurIPS 2022,
//! Eq. 8 there) and SILD's spectral variant (Zhang et al., NeurIPS 2024).
//! Low variance across interventions means the variant channel carries no
//! label-relevant signal, which is exactly what robustness to distribution
//! shift requires.

use nn::Matrix;

/// Number of interventions `P` per training batch.
pub const NUM_INTERVENTIONS: usize = 3;
/// Weight `λ_mean` on the mean intervened risk.
pub const LAMBDA_MEAN: f32 = 0.5;
/// Weight `λ_var` on the variance of intervened risks.
pub const LAMBDA_VAR: f32 = 1.0;

/// The `p`-th batch permutation: a rotation by `p + 1`, so every
/// intervention is a derangement for `n > p + 1` (no sample keeps its own
/// variant summary) and interventions are deterministic given the batch.
pub fn rotation_perm(n: usize, p: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|i| (i + p + 1) % n).collect()
}

/// Gathers rows: `out[i] = m[perm[i]]`.
pub fn permute_rows(m: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(m.rows(), perm.len());
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (i, &src) in perm.iter().enumerate() {
        out.set_row(i, m.row(src));
    }
    out
}

/// Adjoint of [`permute_rows`]: scatters `dperm[i]` into `dout[perm[i]]`,
/// accumulating.
pub fn scatter_rows_add(dperm: &Matrix, perm: &[usize], dout: &mut Matrix) {
    assert_eq!(dperm.rows(), perm.len());
    assert_eq!(dperm.cols(), dout.cols());
    for (i, &dst) in perm.iter().enumerate() {
        let src = dperm.row(i).to_vec();
        let row = dout.row_mut(dst);
        for (o, v) in row.iter_mut().zip(src) {
            *o += v;
        }
    }
}

/// Per-intervention gradient weights of `λ_mean · mean_p L_p + λ_var ·
/// var_p L_p` with the population variance: `∂/∂L_p = λ_mean/P + λ_var ·
/// 2(L_p − L̄)/P`. Weights may be negative — the variance term pulls
/// above-average risks down *and* below-average risks up, toward
/// intervention-invariance.
pub fn intervention_loss_weights(losses: &[f32], lambda_mean: f32, lambda_var: f32) -> Vec<f32> {
    let p = losses.len();
    if p == 0 {
        return Vec::new();
    }
    let mean = losses.iter().sum::<f32>() / p as f32;
    losses
        .iter()
        .map(|&l| lambda_mean / p as f32 + lambda_var * 2.0 * (l - mean) / p as f32)
        .collect()
}

/// Combined intervention penalty value (for loss reporting).
pub fn intervention_penalty(losses: &[f32], lambda_mean: f32, lambda_var: f32) -> f32 {
    let p = losses.len();
    if p == 0 {
        return 0.0;
    }
    let mean = losses.iter().sum::<f32>() / p as f32;
    let var = losses.iter().map(|&l| (l - mean) * (l - mean)).sum::<f32>() / p as f32;
    lambda_mean * mean + lambda_var * var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_a_derangement() {
        for p in 0..3 {
            let perm = rotation_perm(8, p);
            let mut seen = [false; 8];
            for (i, &j) in perm.iter().enumerate() {
                assert_ne!(i, j, "rotation {p} fixed point at {i}");
                assert!(!seen[j], "not a permutation");
                seen[j] = true;
            }
        }
        assert!(rotation_perm(0, 0).is_empty());
    }

    #[test]
    fn permute_scatter_roundtrip_is_adjoint() {
        // <permute(m), d> == <m, scatter(d)> for arbitrary m, d.
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let d = Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let perm = rotation_perm(3, 0);
        let pm = permute_rows(&m, &perm);
        let lhs: f32 = pm.data().iter().zip(d.data()).map(|(a, b)| a * b).sum();
        let mut dm = Matrix::zeros(3, 2);
        scatter_rows_add(&d, &perm, &mut dm);
        let rhs: f32 = m.data().iter().zip(dm.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn loss_weights_sum_to_lambda_mean() {
        // Σ_p ∂(λm·mean + λv·var)/∂L_p = λm because Σ (L_p − L̄) = 0.
        let w = intervention_loss_weights(&[1.0, 2.0, 6.0], 0.5, 1.0);
        let total: f32 = w.iter().sum();
        assert!((total - 0.5).abs() < 1e-6);
        // The largest loss gets the largest weight.
        assert!(w[2] > w[1] && w[1] > w[0]);
    }

    #[test]
    fn equal_losses_have_zero_variance_gradient() {
        let w = intervention_loss_weights(&[2.0, 2.0, 2.0], 0.6, 1.0);
        for &x in &w {
            assert!((x - 0.2).abs() < 1e-6);
        }
        assert!((intervention_penalty(&[2.0, 2.0, 2.0], 0.6, 1.0) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn penalty_matches_finite_difference_of_weights() {
        // Numerical check: weights are the gradient of the penalty.
        let base = [0.5f32, 1.5, 0.9];
        let w = intervention_loss_weights(&base, 0.5, 1.0);
        let eps = 1e-3;
        for i in 0..base.len() {
            let mut plus = base;
            plus[i] += eps;
            let mut minus = base;
            minus[i] -= eps;
            let fd = (intervention_penalty(&plus, 0.5, 1.0)
                - intervention_penalty(&minus, 0.5, 1.0))
                / (2.0 * eps);
            assert!((fd - w[i]).abs() < 1e-3, "component {i}: fd {fd} vs analytic {}", w[i]);
        }
    }
}
