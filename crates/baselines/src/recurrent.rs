//! GRU unrolling over packed token sequences, shared by the memory-based
//! baselines (JODIE, TGN, SLADE).
//!
//! Sequences are packed *right-aligned*: each query's real messages occupy
//! the last `len` of its `k` slots, with zero rows in front. Running the GRU
//! over all `k` slots from a zero state therefore ends every query at its
//! most recent message, and the zero-prefix acts as a learned "empty memory"
//! warm-up, keeping the unroll mask-free and fully differentiable.

use nn::{GruCache, GruCell, Matrix};
use splash::CapturedQuery;

/// Packs queries' recent neighbors right-aligned:
/// `[x_j ‖ x_ij ‖ φ_t(t − t^{(l)})]` in the *last* `len` slots.
pub fn pack_tokens_right(
    refs: &[&CapturedQuery],
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    time_enc: &nn::FixedTimeEncode,
) -> (Matrix, Vec<usize>) {
    let dt = time_enc.dim();
    let width = feat_dim + edge_feat_dim + dt;
    let mut tokens = Matrix::zeros(refs.len() * k, width);
    let mut lens = vec![0usize; refs.len()];
    for (qi, q) in refs.iter().enumerate() {
        let len = q.neighbors.len().min(k);
        lens[qi] = len;
        let skip = q.neighbors.len() - len;
        for (i, nb) in q.neighbors[skip..].iter().enumerate() {
            let slot = k - len + i;
            let row = tokens.row_mut(qi * k + slot);
            row[..feat_dim].copy_from_slice(&nb.feat);
            row[feat_dim..feat_dim + edge_feat_dim].copy_from_slice(&nb.edge_feat);
            row[feat_dim + edge_feat_dim..].copy_from_slice(&time_enc.encode(q.time - nb.time));
        }
    }
    (tokens, lens)
}

/// Cache of one GRU unroll.
pub struct UnrollCache {
    caches: Vec<GruCache>,
    b: usize,
    k: usize,
    width: usize,
}

/// Extracts step-`s` input rows `(B, width)` from packed tokens.
fn step_input(tokens: &Matrix, b: usize, k: usize, s: usize) -> Matrix {
    let width = tokens.cols();
    let mut x = Matrix::zeros(b, width);
    for qi in 0..b {
        x.set_row(qi, tokens.row(qi * k + s));
    }
    x
}

/// Runs the GRU over all `k` slots from a zero state; returns the final
/// state `(B, h_dim)` and the unroll cache.
pub fn gru_unroll(gru: &GruCell, tokens: &Matrix, b: usize, k: usize) -> (Matrix, UnrollCache) {
    let mut h = Matrix::zeros(b, gru.h_dim());
    let mut caches = Vec::with_capacity(k);
    for s in 0..k {
        let x = step_input(tokens, b, k, s);
        let (h_new, cache) = gru.forward(&x, &h);
        caches.push(cache);
        h = h_new;
    }
    (h, UnrollCache { caches, b, k, width: tokens.cols() })
}

/// Backpropagates through the unroll; accumulates GRU parameter gradients
/// and returns `dtokens` `(B·k, width)`.
pub fn gru_unroll_backward(gru: &mut GruCell, cache: &UnrollCache, dfinal: &Matrix) -> Matrix {
    let mut dtokens = Matrix::zeros(cache.b * cache.k, cache.width);
    let mut dh = dfinal.clone();
    for s in (0..cache.k).rev() {
        let (dx, dh_prev) = gru.backward(&cache.caches[s], &dh);
        for qi in 0..cache.b {
            dtokens.set_row(qi * cache.k + s, dx.row(qi));
        }
        dh = dh_prev;
    }
    dtokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::Label;
    use nn::{FixedTimeEncode, Parameterized};
    use rand::{rngs::StdRng, SeedableRng};
    use splash::CapturedNeighbor;

    fn query(feats: &[f32]) -> CapturedQuery {
        CapturedQuery {
            node: 0,
            time: 100.0,
            target_feat: vec![0.0; 2],
            neighbors: feats
                .iter()
                .enumerate()
                .map(|(i, &f)| CapturedNeighbor {
                    other: i as u32,
                    feat: vec![f, -f],
                    edge_feat: vec![],
                    time: 90.0 + i as f64,
                    weight: 1.0,
                })
                .collect(),
            label: Label::Class(0),
        }
    }

    #[test]
    fn right_alignment_puts_latest_last() {
        let te = FixedTimeEncode::new(2, 4.0, 4.0);
        let q = query(&[1.0, 2.0]);
        let (tokens, lens) = pack_tokens_right(&[&q], 4, 2, 0, &te);
        assert_eq!(lens, vec![2]);
        assert!(tokens.row(0).iter().all(|&v| v == 0.0));
        assert!(tokens.row(1).iter().all(|&v| v == 0.0));
        assert_eq!(tokens.get(2, 0), 1.0);
        assert_eq!(tokens.get(3, 0), 2.0);
    }

    #[test]
    fn unroll_final_state_depends_on_sequence() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = nn::GruCell::new(4, 6, &mut rng);
        let te = FixedTimeEncode::new(2, 4.0, 4.0);
        let q1 = query(&[1.0, 2.0]);
        let q2 = query(&[2.0, 1.0]);
        let (t1, _) = pack_tokens_right(&[&q1], 3, 2, 0, &te);
        let (t2, _) = pack_tokens_right(&[&q2], 3, 2, 0, &te);
        let (h1, _) = gru_unroll(&gru, &t1, 1, 3);
        let (h2, _) = gru_unroll(&gru, &t2, 1, 3);
        assert_ne!(h1, h2, "order must matter to a recurrent state");
    }

    #[test]
    fn unroll_gradients_match_fd() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = nn::GruCell::new(3, 4, &mut rng);
        let tokens = nn::randn_matrix(2 * 3, 3, 1.0, &mut rng);
        let (h, cache) = gru_unroll(&gru, &tokens, 2, 3);
        let coef = nn::test_util::probe_coefficients(h.rows(), h.cols());
        gru.zero_grad();
        let dtokens = gru_unroll_backward(&mut gru, &cache, &coef);
        let eps = 5e-3f32;
        for idx in 0..tokens.len() {
            let mut tp = tokens.clone();
            tp.data_mut()[idx] += eps;
            let mut tm = tokens.clone();
            tm.data_mut()[idx] -= eps;
            let lp = gru_unroll(&gru, &tp, 2, 3).0.hadamard(&coef).sum();
            let lm = gru_unroll(&gru, &tm, 2, 3).0.hadamard(&coef).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dtokens.data()[idx];
            assert!(
                (analytic - numeric).abs() < 4e-2 * 1.0f32.max(analytic.abs()),
                "dtokens[{idx}]: {analytic} vs {numeric}"
            );
        }
    }
}
