//! JODIE (Kumar et al., KDD 2019): recurrent dynamic node embeddings with a
//! time-projection operator.
//!
//! JODIE updates a node's embedding with an RNN at every interaction and
//! *projects* it forward in time before making a prediction:
//! `ĥ(t + Δ) = (1 + Δ·w) ⊙ h(t)`. Here the RNN (a GRU) is unrolled over the
//! node's `k` most recent interactions (see `recurrent` module docs) and the
//! projection uses `log(1 + Δt)` as the drift input.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, GruCell, Matrix, Mlp, Param, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{stack_targets, Baseline};
use crate::recurrent::{gru_unroll, gru_unroll_backward, pack_tokens_right};

/// The JODIE baseline.
pub struct Jodie {
    gru: GruCell,
    /// Time-projection weights `w`, shape `(1, hidden)`.
    proj: Param,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

impl Jodie {
    /// Builds JODIE for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let width = feat_dim + edge_feat_dim + cfg.time_dim;
        Self {
            gru: GruCell::new(width, dh, rng),
            proj: Param::new(Matrix::zeros(1, dh)),
            decoder: Mlp::new(&[dh + feat_dim, dh, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    /// `log(1 + Δt)` since each query's last event (0 when eventless).
    fn drift(&self, refs: &[&CapturedQuery]) -> Vec<f32> {
        refs.iter()
            .map(|q| {
                q.neighbors
                    .last()
                    .map(|nb| ((q.time - nb.time).max(0.0) as f32).ln_1p())
                    .unwrap_or(0.0)
            })
            .collect()
    }

    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (Matrix, Matrix, Matrix, Vec<f32>, crate::recurrent::UnrollCache, nn::MlpCache) {
        let b = refs.len();
        let (tokens, _lens) =
            pack_tokens_right(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let (h, ucache) = gru_unroll(&self.gru, &tokens, b, self.k);
        let drift = self.drift(refs);
        // h_proj = h ⊙ (1 + drift · w)
        let w = self.proj.value.row(0);
        let mut h_proj = h.clone();
        for (qi, &d) in drift.iter().enumerate() {
            for (v, &wj) in h_proj.row_mut(qi).iter_mut().zip(w) {
                *v *= 1.0 + d * wj;
            }
        }
        let target = stack_targets(refs, self.feat_dim);
        let concat = Matrix::concat_cols(&[&h_proj, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, h, h_proj, drift, ucache, dec_cache)
    }

    fn step(&mut self) {
        let Self { gru, proj, decoder, opt, .. } = self;
        let mut params = gru.params_mut();
        params.push(proj);
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for Jodie {
    fn name(&self) -> &'static str {
        "jodie"
    }

    fn num_params(&self) -> usize {
        Parameterized::num_params(&self.gru) + self.proj.len() + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (logits, h, _h_proj, drift, ucache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dh_proj = dconcat.slice_cols(0, h.cols());
        // h_proj = h ⊙ (1 + d·w): dh = dh_proj ⊙ (1 + d·w); dw_j += Σ dh_proj ⊙ h · d
        let w = self.proj.value.row(0).to_vec();
        let mut dh = dh_proj.clone();
        {
            let dw = self.proj.grad.row_mut(0);
            for (qi, &d) in drift.iter().enumerate() {
                let dh_row = dh.row_mut(qi);
                let h_row = h.row(qi);
                for j in 0..w.len() {
                    dw[j] += dh_row[j] * h_row[j] * d;
                    dh_row[j] *= 1.0 + d * w[j];
                }
            }
        }
        gru_unroll_backward(&mut self.gru, &ucache, &dh);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> Jodie {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(0);
        Jodie::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn handles_empty_neighbor_lists() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 1.0,
            target_feat: vec![0.0; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        let logits = m.predict_batch(&[&q]);
        assert_eq!(logits.shape(), (1, 2));
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_count_positive() {
        assert!(model().num_params() > 0);
    }
}
