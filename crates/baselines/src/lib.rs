//! From-scratch reimplementations of the baseline methods the SPLASH paper
//! compares against: the eight TGNNs of Table III (JODIE, DySAT, TGAT, TGN,
//! GraphMixer, DyGFormer, FreeDyG, SLADE) — each preserving its
//! architectural signature on top of the shared streaming-capture harness
//! (see `common` module docs for the memory-truncation fidelity note) — and
//! the two DTDG-based shift-robust methods of Fig. 12 (DIDA, SLID), built on
//! the shared intervention mechanism in [`intervention`].

pub mod common;
pub mod dida;
pub mod dygformer;
pub mod dysat;
pub mod freedyg;
pub mod graphmixer;
pub mod intervention;
pub mod jodie;
pub mod recurrent;
pub mod registry;
pub mod serve;
pub mod slade;
pub mod slid;
pub mod tgat;
pub mod tgn;

pub use common::{
    pack_window_onehot, predict_all, run_baseline, run_baseline_frac, train_on_queries, Baseline,
    BaselineOutput,
};
pub use dida::Dida;
pub use dygformer::DyGFormerModel;
pub use dysat::DySat;
pub use freedyg::FreeDyGModel;
pub use graphmixer::GraphMixerModel;
pub use jodie::Jodie;
pub use registry::{
    all_variants, build_baseline, build_dtdg, mode_suffix, parse_variant, run, run_dtdg, run_frac,
    run_on_capture, BaselineKind, BaselineVariant, DtdgKind,
};
pub use serve::{engine_factory, BaselineEngine};
pub use slade::Slade;
pub use slid::Slid;
pub use tgat::Tgat;
pub use tgn::Tgn;
