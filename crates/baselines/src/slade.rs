//! SLADE (Lee et al., KDD 2024): self-supervised dynamic anomaly detection
//! on edge streams, *without labels*.
//!
//! SLADE trains a memory module with self-supervised objectives and scores a
//! node by how poorly its current behaviour matches what the memory
//! predicts. Here the memory is a GRU over the node's recent messages, the
//! self-supervised task is next-message prediction, and the anomaly score is
//! the prediction error on the most recent message — large when the node's
//! behaviour deviates from its own history, SLADE's core signal. Labels
//! passed to `train_batch` are ignored (label-free training); the model is
//! only meaningful for the dynamic anomaly detection task.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, GruCell, Matrix, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::Baseline;
use crate::recurrent::{gru_unroll, gru_unroll_backward, pack_tokens_right};

/// The SLADE baseline (anomaly detection only).
pub struct Slade {
    memory: GruCell,
    predictor: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

impl Slade {
    /// Builds SLADE for the given input dimensions. `out_dim` is ignored —
    /// the model emits a 2-column score matrix `[0, anomaly_score]`.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        _out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let width = feat_dim + edge_feat_dim + cfg.time_dim;
        Self {
            memory: GruCell::new(width, dh, rng),
            predictor: Mlp::new(&[dh, dh, width], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    /// Splits each query's right-aligned tokens into (prefix, last message).
    /// The prefix drops the final slot; queries with no neighbors have an
    /// all-zero last message and are masked out of the loss.
    fn split_tokens(&self, refs: &[&CapturedQuery]) -> (Matrix, Matrix, Vec<bool>) {
        let (tokens, lens) =
            pack_tokens_right(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let b = refs.len();
        let width = tokens.cols();
        let kp = self.k - 1;
        let mut prefix = Matrix::zeros(b * kp.max(1), width);
        let mut last = Matrix::zeros(b, width);
        let mut valid = vec![false; b];
        for qi in 0..b {
            valid[qi] = lens[qi] >= 1;
            for slot in 0..kp {
                prefix.set_row(qi * kp + slot, tokens.row(qi * self.k + slot));
            }
            last.set_row(qi, tokens.row(qi * self.k + (self.k - 1)));
        }
        (prefix, last, valid)
    }

    fn step(&mut self) {
        let Self { memory, predictor, opt, .. } = self;
        let mut params = memory.params_mut();
        params.extend(predictor.params_mut());
        opt.step(params);
    }
}

impl Baseline for Slade {
    fn name(&self) -> &'static str {
        "slade"
    }

    fn num_params(&self) -> usize {
        Parameterized::num_params(&self.memory) + self.predictor.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], _labels: &[&Label], _task: Task) -> f32 {
        assert!(self.k >= 2, "SLADE needs k >= 2");
        let b = refs.len();
        let kp = self.k - 1;
        let (prefix, last, valid) = self.split_tokens(refs);
        let (mem, ucache) = gru_unroll(&self.memory, &prefix, b, kp);
        let (pred, pred_cache) = self.predictor.forward(&mem);
        // Masked MSE against the most recent message.
        let n_valid = valid.iter().filter(|&&v| v).count().max(1);
        let diff = pred.sub(&last);
        let mut loss = 0.0f32;
        let mut dpred = Matrix::zeros(pred.rows(), pred.cols());
        let scale = 2.0 / (n_valid * pred.cols()) as f32;
        for (qi, &ok) in valid.iter().enumerate().take(b) {
            if !ok {
                continue;
            }
            for j in 0..pred.cols() {
                let d = diff.get(qi, j);
                loss += d * d;
                dpred.set(qi, j, d * scale);
            }
        }
        loss /= (n_valid * pred.cols()) as f32;
        let dmem = self.predictor.backward(&pred_cache, &dpred);
        gru_unroll_backward(&mut self.memory, &ucache, &dmem);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        let b = refs.len();
        let kp = self.k - 1;
        let (prefix, last, valid) = self.split_tokens(refs);
        let (mem, _) = gru_unroll(&self.memory, &prefix, b, kp);
        let pred = self.predictor.infer(&mem);
        // Anomaly score = mean squared prediction error on the latest message.
        let mut out = Matrix::zeros(b, 2);
        for (qi, &ok) in valid.iter().enumerate().take(b) {
            if !ok {
                continue;
            }
            let mut err = 0.0f32;
            for j in 0..pred.cols() {
                let d = pred.get(qi, j) - last.get(qi, j);
                err += d * d;
            }
            out.set(qi, 1, err / pred.cols() as f32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash::CapturedNeighbor;

    fn model() -> Slade {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        Slade::new(4, 0, 2, &cfg, &mut rng)
    }

    fn behavioral_query(pattern: f32, noise_tag: f32, time: f64) -> CapturedQuery {
        let neighbors = (0..4)
            .map(|j| CapturedNeighbor {
                other: j as u32,
                feat: vec![pattern, pattern * 0.5, -pattern, noise_tag],
                edge_feat: vec![],
                time: time - 4.0 + j as f64,
                weight: 1.0,
            })
            .collect();
        CapturedQuery {
            node: 0,
            time,
            target_feat: vec![0.0; 4],
            neighbors,
            label: Label::Class(0),
        }
    }

    #[test]
    fn scores_deviant_behavior_higher() {
        let mut m = model();
        // Train on a homogeneous "normal" pattern.
        let normal: Vec<CapturedQuery> =
            (0..64).map(|i| behavioral_query(0.5, 0.1, 100.0 + i as f64)).collect();
        let refs: Vec<&CapturedQuery> = normal.iter().collect();
        let labels: Vec<&Label> = normal.iter().map(|q| &q.label).collect();
        for _ in 0..150 {
            m.train_batch(&refs, &labels, Task::Anomaly);
        }
        // A consistent node scores low; a deviant one scores high.
        let consistent = behavioral_query(0.5, 0.1, 200.0);
        let mut deviant = behavioral_query(0.5, 0.1, 200.0);
        // Replace the deviant's *last* message with an out-of-pattern one.
        let last = deviant.neighbors.last_mut().unwrap();
        last.feat = vec![-3.0, 3.0, 3.0, -3.0];
        let scores = m.predict_batch(&[&consistent, &deviant]);
        assert!(
            scores.get(1, 1) > scores.get(0, 1) * 2.0,
            "deviant {} vs consistent {}",
            scores.get(1, 1),
            scores.get(0, 1)
        );
    }

    #[test]
    fn training_ignores_labels() {
        // Identical batches with different labels yield identical losses.
        let mut m1 = model();
        let mut m2 = model();
        let q = behavioral_query(0.3, 0.0, 50.0);
        let l0 = Label::Class(0);
        let l1 = Label::Class(1);
        let a = m1.train_batch(&[&q], &[&l0], Task::Anomaly);
        let b = m2.train_batch(&[&q], &[&l1], Task::Anomaly);
        assert_eq!(a, b);
    }

    #[test]
    fn eventless_queries_score_zero() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.0; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        let s = m.predict_batch(&[&q]);
        assert_eq!(s.get(0, 1), 0.0);
    }
}
