//! SLID / SILD (Zhang et al., NeurIPS 2024): spectral invariant learning for
//! dynamic graphs, the second DTDG-based shift-robust baseline of the
//! paper's Fig. 12.
//!
//! The defining mechanism is *disentanglement in the frequency domain*: the
//! recent-event token sequence is transformed with an explicit DFT and two
//! learnable complex filters split it into an invariant spectral pattern and
//! a variant spectral pattern. The same batch-level intervention objective
//! as DIDA ([`crate::intervention`]) trains the predictor to rely only on
//! the invariant spectrum. As a DTDG method, SLID receives the micro-
//! snapshot window ids of each query's history as token inputs
//! ([`pack_window_onehot`]).

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, FrequencyFilter, Linear, Matrix, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{
    masked_mean, masked_mean_backward, pack_tokens, pack_window_onehot, stack_targets, Baseline,
};
use crate::dida::MICRO_WINDOWS;
use crate::intervention::{
    intervention_loss_weights, intervention_penalty, permute_rows, rotation_perm,
    scatter_rows_add, LAMBDA_MEAN, LAMBDA_VAR, NUM_INTERVENTIONS,
};

/// The SLID baseline.
pub struct Slid {
    proj: Linear,
    filter_inv: FrequencyFilter,
    filter_var: FrequencyFilter,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    channels: usize,
}

/// Trunk activations for one batch.
struct Trunk {
    lens: Vec<usize>,
    proj_cache: nn::LinearCache,
    inv_cache: nn::FrequencyFilterCache,
    var_cache: nn::FrequencyFilterCache,
    z_inv: Matrix,
    z_var: Matrix,
    target: Matrix,
}

impl Slid {
    /// Builds SLID for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let width = feat_dim + edge_feat_dim + cfg.time_dim + MICRO_WINDOWS;
        let channels = cfg.hidden;
        Self {
            proj: Linear::new(width, channels, rng),
            filter_inv: FrequencyFilter::new(cfg.k, channels),
            filter_var: FrequencyFilter::new(cfg.k, channels),
            decoder: Mlp::new(
                &[2 * channels + feat_dim, cfg.hidden, out_dim],
                Activation::Relu,
                rng,
            ),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            channels,
        }
    }

    fn trunk(&self, refs: &[&CapturedQuery]) -> Trunk {
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let windows = pack_window_onehot(refs, self.k, MICRO_WINDOWS);
        let input = Matrix::concat_cols(&[&tokens, &windows]);
        let (x, proj_cache) = self.proj.forward(&input);
        let (f_inv, inv_cache) = self.filter_inv.forward(&x);
        let (f_var, var_cache) = self.filter_var.forward(&x);
        let z_inv = masked_mean(&f_inv, &lens, self.k);
        let z_var = masked_mean(&f_var, &lens, self.k);
        let target = stack_targets(refs, self.feat_dim);
        Trunk { lens, proj_cache, inv_cache, var_cache, z_inv, z_var, target }
    }

    fn step(&mut self) {
        let Self { proj, filter_inv, filter_var, decoder, opt, .. } = self;
        let mut params = proj.params_mut();
        params.extend(filter_inv.params_mut());
        params.extend(filter_var.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for Slid {
    fn name(&self) -> &'static str {
        "slid"
    }

    fn num_params(&self) -> usize {
        self.proj.num_params()
            + Parameterized::num_params(&self.filter_inv)
            + Parameterized::num_params(&self.filter_var)
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let t = self.trunk(refs);
        let b = refs.len();
        let c = self.channels;

        // Main pass.
        let concat = Matrix::concat_cols(&[&t.z_inv, &t.z_var, &t.target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        let (main_loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let mut dz_inv = dconcat.slice_cols(0, c);
        let mut dz_var = dconcat.slice_cols(c, 2 * c);

        // Intervention passes on the variant spectrum.
        let mut penalty = 0.0;
        if b >= 2 {
            let mut passes = Vec::with_capacity(NUM_INTERVENTIONS);
            let mut losses = Vec::with_capacity(NUM_INTERVENTIONS);
            for p in 0..NUM_INTERVENTIONS {
                let perm = rotation_perm(b, p);
                let zv_p = permute_rows(&t.z_var, &perm);
                let concat_p = Matrix::concat_cols(&[&t.z_inv, &zv_p, &t.target]);
                let (logits_p, cache_p) = self.decoder.forward(&concat_p);
                let (loss_p, dlogits_p) = splash::task::loss_and_grad(task, &logits_p, labels);
                losses.push(loss_p);
                passes.push((perm, cache_p, dlogits_p));
            }
            let weights = intervention_loss_weights(&losses, LAMBDA_MEAN, LAMBDA_VAR);
            penalty = intervention_penalty(&losses, LAMBDA_MEAN, LAMBDA_VAR);
            for ((perm, cache_p, dlogits_p), w) in passes.into_iter().zip(weights) {
                let dconcat_p = self.decoder.backward(&cache_p, &dlogits_p.scale(w));
                dz_inv.add_assign(&dconcat_p.slice_cols(0, c));
                scatter_rows_add(&dconcat_p.slice_cols(c, 2 * c), &perm, &mut dz_var);
            }
        }

        // Spectral backward: pooled gradients through each filter branch.
        let df_inv = masked_mean_backward(&dz_inv, &t.lens, self.k);
        let df_var = masked_mean_backward(&dz_var, &t.lens, self.k);
        let mut dx = self.filter_inv.backward(&t.inv_cache, &df_inv);
        dx.add_assign(&self.filter_var.backward(&t.var_cache, &df_var));
        self.proj.backward(&t.proj_cache, &dx);
        self.step();
        main_loss + penalty
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        let t = self.trunk(refs);
        let concat = Matrix::concat_cols(&[&t.z_inv, &t.z_var, &t.target]);
        self.decoder.infer(&concat)
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.trunk(refs).z_inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{assert_model_learns, toy_queries};
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> Slid {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(11);
        Slid::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn both_filters_receive_gradients() {
        let mut m = model();
        let inv_before = m.filter_inv.re.value.clone();
        let var_before = m.filter_var.re.value.clone();
        let (queries, labels) = toy_queries(16, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let label_refs: Vec<&Label> = labels.iter().collect();
        for _ in 0..5 {
            m.train_batch(&refs, &label_refs, Task::Classification);
        }
        assert_ne!(m.filter_inv.re.value, inv_before, "invariant filter must train");
        assert_ne!(m.filter_var.re.value, var_before, "variant filter must train");
    }

    #[test]
    fn branches_are_disentangled() {
        // The two filter branches start identical in structure but with the
        // same init they'd be redundant; training must keep them distinct
        // because only the variant branch is intervened on.
        let mut m = model();
        let (queries, labels) = toy_queries(16, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let label_refs: Vec<&Label> = labels.iter().collect();
        for _ in 0..30 {
            m.train_batch(&refs, &label_refs, Task::Classification);
        }
        let diff = m.filter_inv.re.value.sub(&m.filter_var.re.value).max_abs();
        assert!(diff > 1e-5, "filters must diverge under the intervention objective");
    }

    #[test]
    fn representation_is_the_invariant_summary() {
        let m = model();
        let (queries, _) = toy_queries(4, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let rep = m.represent_batch(&refs);
        assert_eq!(rep.shape(), (4, m.channels));
    }
}
