//! Shared infrastructure for the baseline TGNNs: the [`Baseline`] trait, the
//! token-packing helpers, and the train/evaluate driver.
//!
//! Fidelity note (also in DESIGN.md): the reference implementations maintain
//! per-node memories over the *entire* history; here the recurrent models
//! (JODIE, TGN, SLADE) unroll their memory over the node's `k` most recent
//! events — the same information SLIM sees — and are trained end-to-end by
//! backpropagation through those `k` steps. This keeps each architecture's
//! signature (RNN update, memory + attention, self-supervised scoring)
//! while making all models comparable under one streaming-capture harness.

use std::time::Instant;

use ctdg::Label;
use datasets::{Dataset, Task};
use nn::{FixedTimeEncode, Matrix};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use splash::{Capture, CapturedQuery, SplashConfig};

/// A trainable baseline model over captured queries.
///
/// `Send` so a boxed baseline can sit behind a [`splash::ServeEngine`]
/// slot inside a service that moves across threads (every implementation
/// is a plain bundle of owned matrices).
pub trait Baseline: Send {
    /// Display name (without the feature-mode suffix).
    fn name(&self) -> &'static str;

    /// Total trainable parameter count.
    fn num_params(&self) -> usize;

    /// One optimization step on a minibatch; returns the batch loss.
    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32;

    /// Inference over a minibatch; returns logits `(B, out_dim)`.
    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix;

    /// Node representations for qualitative analysis; models that expose no
    /// intermediate representation return their logits.
    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.predict_batch(refs)
    }
}

/// Result of one baseline run, mirroring [`splash::SplashOutput`].
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Model name including the feature-mode suffix (e.g. `"tgat+RF"`).
    pub name: String,
    /// Test metric (task-dependent).
    pub metric: f64,
    /// Trainable parameter count.
    pub num_params: usize,
    /// Training wall-clock seconds.
    pub train_secs: f64,
    /// Test-inference wall-clock seconds.
    pub infer_secs: f64,
    /// Test-set logits.
    pub test_logits: Matrix,
    /// `[start, end)` query indices of the test split.
    pub test_range: (usize, usize),
}

/// Trains `model` on the capture's train split and evaluates on the test
/// split under the 10/10/80 protocol.
pub fn run_baseline(
    model: &mut dyn Baseline,
    dataset: &Dataset,
    cap: &Capture,
    cfg: &SplashConfig,
    name_suffix: &str,
) -> BaselineOutput {
    run_baseline_frac(model, dataset, cap, cfg, name_suffix, splash::TRAIN_FRAC, splash::SEEN_FRAC)
}

/// [`run_baseline`] under a custom chronological split (Fig. 9 sweep).
pub fn run_baseline_frac(
    model: &mut dyn Baseline,
    dataset: &Dataset,
    cap: &Capture,
    cfg: &SplashConfig,
    name_suffix: &str,
    train_frac: f64,
    seen_frac: f64,
) -> BaselineOutput {
    let n = cap.queries.len();
    let (train_end, val_end) = splash::split_bounds_frac(n, train_frac, seen_frac);
    let train = &cap.queries[..train_end];

    let start = Instant::now();
    train_on_queries(model, train, dataset.task, cfg);
    let train_secs = start.elapsed().as_secs_f64();

    let test = &cap.queries[val_end..];
    let start = Instant::now();
    let test_logits = predict_all(model, test, cfg.batch_size.max(256));
    let infer_secs = start.elapsed().as_secs_f64();
    let labels: Vec<&Label> = test.iter().map(|q| &q.label).collect();
    let metric = splash::task::evaluate(dataset.task, &test_logits, &labels);

    BaselineOutput {
        name: format!("{}{}", model.name(), name_suffix),
        metric,
        num_params: model.num_params(),
        train_secs,
        infer_secs,
        test_logits,
        test_range: (val_end, n),
    }
}

/// Trains `model` over `train`: `cfg.epochs` epochs of
/// Fisher–Yates-shuffled minibatches of `cfg.batch_size`, under an RNG
/// seeded from `cfg.seed` alone. This is the exact loop (and RNG stream)
/// behind [`run_baseline_frac`], exposed so serving adapters
/// ([`crate::serve::BaselineEngine`]) can reproduce offline training
/// bit-identically.
pub fn train_on_queries(
    model: &mut dyn Baseline,
    train: &[CapturedQuery],
    task: Task,
    cfg: &SplashConfig,
) {
    let nt = train.len();
    if nt == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA5E);
    let mut order: Vec<usize> = (0..nt).collect();
    for _epoch in 0..cfg.epochs {
        for i in (1..nt).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut pos = 0;
        while pos < nt {
            let end = (pos + cfg.batch_size).min(nt);
            let refs: Vec<&CapturedQuery> = order[pos..end].iter().map(|&i| &train[i]).collect();
            let labels: Vec<&Label> = refs.iter().map(|q| &q.label).collect();
            model.train_batch(&refs, &labels, task);
            pos = end;
        }
    }
}

/// Batched inference over a query slice.
pub fn predict_all(model: &dyn Baseline, queries: &[CapturedQuery], batch: usize) -> Matrix {
    let mut blocks = Vec::new();
    let mut pos = 0;
    while pos < queries.len() {
        let end = (pos + batch).min(queries.len());
        let refs: Vec<&CapturedQuery> = queries[pos..end].iter().collect();
        blocks.push(model.predict_batch(&refs));
        pos = end;
    }
    if blocks.is_empty() {
        Matrix::zeros(0, 0)
    } else {
        let refs: Vec<&Matrix> = blocks.iter().collect();
        Matrix::concat_rows(&refs)
    }
}

/// Packs each query's recent neighbors into dense token rows
/// `[x_j ‖ x_ij ‖ φ_t(t − t^{(l)})]`, zero-padded to `k` per query, most
/// recent `k` kept, oldest-first. Returns `(tokens, lens)`.
pub fn pack_tokens(
    refs: &[&CapturedQuery],
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    time_enc: &FixedTimeEncode,
) -> (Matrix, Vec<usize>) {
    let dt = time_enc.dim();
    let width = feat_dim + edge_feat_dim + dt;
    let mut tokens = Matrix::zeros(refs.len() * k, width);
    let mut lens = vec![0usize; refs.len()];
    for (qi, q) in refs.iter().enumerate() {
        let len = q.neighbors.len().min(k);
        lens[qi] = len;
        let skip = q.neighbors.len() - len;
        for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
            let row = tokens.row_mut(qi * k + slot);
            row[..feat_dim].copy_from_slice(&nb.feat);
            row[feat_dim..feat_dim + edge_feat_dim].copy_from_slice(&nb.edge_feat);
            row[feat_dim + edge_feat_dim..]
                .copy_from_slice(&time_enc.encode(q.time - nb.time));
        }
    }
    (tokens, lens)
}

/// Discrete-time (micro-snapshot) one-hot encodings aligned with
/// [`pack_tokens`]: each query's kept neighbors are bucketed into
/// `num_windows` equal time windows over the query's own history span
/// ([`ctdg::bucket_by_window`]), and every token row gets the one-hot of its
/// window. Padding rows stay zero. This is how the DTDG baselines (DIDA,
/// SLID) see their snapshot structure at per-query granularity.
pub fn pack_window_onehot(refs: &[&CapturedQuery], k: usize, num_windows: usize) -> Matrix {
    let mut onehot = Matrix::zeros(refs.len() * k, num_windows);
    for (qi, q) in refs.iter().enumerate() {
        let len = q.neighbors.len().min(k);
        let skip = q.neighbors.len() - len;
        let times: Vec<f64> = q.neighbors[skip..].iter().map(|nb| nb.time).collect();
        for (slot, &w) in ctdg::bucket_by_window(&times, num_windows).iter().enumerate() {
            onehot.set(qi * k + slot, w, 1.0);
        }
    }
    onehot
}

/// Mean over each query's valid token rows: `(B·k, d) → (B, d)`.
pub fn masked_mean(m: &Matrix, lens: &[usize], k: usize) -> Matrix {
    let d = m.cols();
    let mut out = Matrix::zeros(lens.len(), d);
    for (qi, &len) in lens.iter().enumerate() {
        if len == 0 {
            continue;
        }
        let inv = 1.0 / len as f32;
        for slot in 0..len {
            let src = m.row(qi * k + slot);
            let dst = out.row_mut(qi);
            for (o, &v) in dst.iter_mut().zip(src) {
                *o += v * inv;
            }
        }
    }
    out
}

/// Adjoint of [`masked_mean`]: spreads `(B, d)` gradients back over valid
/// token rows.
pub fn masked_mean_backward(dout: &Matrix, lens: &[usize], k: usize) -> Matrix {
    let d = dout.cols();
    let mut dm = Matrix::zeros(lens.len() * k, d);
    for (qi, &len) in lens.iter().enumerate() {
        if len == 0 {
            continue;
        }
        let inv = 1.0 / len as f32;
        for slot in 0..len {
            let dst = dm.row_mut(qi * k + slot);
            let src = dout.row(qi);
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v * inv;
            }
        }
    }
    dm
}

/// Stacks each query's target feature into a `(B, d)` matrix.
pub fn stack_targets(refs: &[&CapturedQuery], feat_dim: usize) -> Matrix {
    let mut out = Matrix::zeros(refs.len(), feat_dim);
    for (qi, q) in refs.iter().enumerate() {
        out.set_row(qi, &q.target_feat);
    }
    out
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use splash::CapturedNeighbor;

    /// A toy binary task distinguishable by neighbor features.
    pub fn toy_queries(n: usize, feat_dim: usize) -> (Vec<CapturedQuery>, Vec<Label>) {
        let mut queries = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            let neighbors = (0..3)
                .map(|j| CapturedNeighbor {
                    other: j as u32,
                    feat: (0..feat_dim)
                        .map(|d| sign * ((d + j) as f32 * 0.3 + 0.2))
                        .collect(),
                    edge_feat: vec![],
                    time: 90.0 + j as f64,
                    weight: 1.0,
                })
                .collect();
            queries.push(CapturedQuery {
                node: i as u32,
                time: 100.0,
                target_feat: vec![sign * 0.5; feat_dim],
                neighbors,
                label: Label::Class((i % 2 == 1) as usize),
            });
            labels.push(Label::Class((i % 2 == 1) as usize));
        }
        (queries, labels)
    }

    /// Trains a model briefly on the toy task and asserts it fits.
    pub fn assert_model_learns(model: &mut dyn Baseline, feat_dim: usize) {
        let (queries, labels) = toy_queries(32, feat_dim);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let label_refs: Vec<&Label> = labels.iter().collect();
        let mut last = f32::MAX;
        for _ in 0..200 {
            last = model.train_batch(&refs, &label_refs, Task::Classification);
        }
        assert!(last < 0.2, "{} failed to fit toy task: loss {last}", model.name());
        // Predictions must match labels.
        let logits = model.predict_batch(&refs);
        for (i, l) in labels.iter().enumerate() {
            let pred = if logits.get(i, 1) > logits.get(i, 0) { 1 } else { 0 };
            assert_eq!(pred, l.class(), "{} mispredicts sample {i}", model.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash::CapturedNeighbor;

    fn q(n_neighbors: usize) -> CapturedQuery {
        CapturedQuery {
            node: 0,
            time: 100.0,
            target_feat: vec![1.0, 2.0],
            neighbors: (0..n_neighbors)
                .map(|i| CapturedNeighbor {
                    other: i as u32,
                    feat: vec![i as f32, 0.0],
                    edge_feat: vec![9.0],
                    time: 90.0 + i as f64,
                    weight: 1.0,
                })
                .collect(),
            label: Label::Class(0),
        }
    }

    #[test]
    fn pack_tokens_pads_and_truncates() {
        let te = FixedTimeEncode::new(4, 4.0, 4.0);
        let q1 = q(1);
        let q2 = q(5);
        let (tokens, lens) = pack_tokens(&[&q1, &q2], 3, 2, 1, &te);
        assert_eq!(tokens.shape(), (6, 2 + 1 + 4));
        assert_eq!(lens, vec![1, 3]);
        // q2 keeps its 3 most recent neighbors (ids 2, 3, 4).
        assert_eq!(tokens.get(3, 0), 2.0);
        assert_eq!(tokens.get(5, 0), 4.0);
        // padding rows are zero
        assert!(tokens.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn masked_mean_roundtrip() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 0.0, 0.0]);
        let mean = masked_mean(&m, &[2, 1], 2);
        assert_eq!(mean.row(0), &[2.0, 3.0]);
        assert_eq!(mean.row(1), &[10.0, 20.0]);
        let dm = masked_mean_backward(&mean, &[2, 1], 2);
        assert_eq!(dm.row(0), &[1.0, 1.5]);
        assert_eq!(dm.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn stack_targets_shapes() {
        let q1 = q(0);
        let t = stack_targets(&[&q1], 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
    }
}
