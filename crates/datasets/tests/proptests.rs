//! Property-based tests for the dataset substrate: CSV interchange
//! round-trips and generator invariants.

use ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};
use datasets::{
    edges_from_csv, edges_to_csv, queries_from_csv, queries_to_csv, Dataset, Task,
};
use proptest::prelude::*;

/// Strategy: a chronologically ordered edge stream with optional per-edge
/// features of a fixed dimension.
fn arb_stream(feat_dim: usize) -> impl Strategy<Value = EdgeStream> {
    prop::collection::vec(
        (
            0u32..20,
            0u32..20,
            0.0f64..1e6,
            -5.0f32..5.0,
            prop::collection::vec(-3.0f32..3.0, feat_dim),
        ),
        0..60,
    )
    .prop_map(|mut raw| {
        raw.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let edges = raw
            .into_iter()
            .map(|(s, d, t, w, f)| TemporalEdge { src: s, dst: d, time: t, weight: w, feat: f.into() })
            .collect();
        EdgeStream::new(edges).expect("sorted edges form a stream")
    })
}

fn wrap(stream: EdgeStream, queries: Vec<PropertyQuery>, task: Task, classes: usize) -> Dataset {
    Dataset {
        name: "prop".into(),
        task,
        stream,
        queries,
        num_classes: classes,
        node_feats: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Edge CSV round-trips exactly (Rust's shortest-round-trip float
    /// formatting guarantees bit-identical times, weights and features).
    #[test]
    fn edge_csv_roundtrip(stream in arb_stream(3)) {
        let d = wrap(stream, vec![], Task::Classification, 2);
        let csv = edges_to_csv(&d);
        let back = edges_from_csv(&csv).expect("own output must parse");
        prop_assert_eq!(back.len(), d.stream.len());
        for (a, b) in back.edges().iter().zip(d.stream.edges()) {
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.weight, b.weight);
            prop_assert_eq!(a.feat.as_ref(), b.feat.as_ref());
        }
    }

    /// Classification query CSV round-trips exactly.
    #[test]
    fn class_query_csv_roundtrip(
        raw in prop::collection::vec((0u32..50, 0.0f64..1e5, 0usize..7), 0..50)
    ) {
        let mut raw = raw;
        raw.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let queries: Vec<PropertyQuery> = raw
            .into_iter()
            .map(|(v, t, c)| PropertyQuery { node: v, time: t, label: Label::Class(c) })
            .collect();
        let d = wrap(
            EdgeStream::new(vec![]).unwrap(),
            queries.clone(),
            Task::Classification,
            7,
        );
        let csv = queries_to_csv(&d);
        let back = queries_from_csv(&csv, Task::Classification).expect("parses");
        prop_assert_eq!(back.len(), queries.len());
        for (a, b) in back.iter().zip(&queries) {
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.label.class(), b.label.class());
        }
    }

    /// Affinity query CSV round-trips exactly, including the vector labels.
    #[test]
    fn affinity_query_csv_roundtrip(
        raw in prop::collection::vec(
            (0u32..30, 0.0f64..1e5, prop::collection::vec(0.0f32..1.0, 4)),
            0..30,
        )
    ) {
        let mut raw = raw;
        raw.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let queries: Vec<PropertyQuery> = raw
            .into_iter()
            .map(|(v, t, a)| PropertyQuery { node: v, time: t, label: Label::Affinity(a.into()) })
            .collect();
        let d = wrap(EdgeStream::new(vec![]).unwrap(), queries.clone(), Task::Affinity, 4);
        let csv = queries_to_csv(&d);
        let back = queries_from_csv(&csv, Task::Affinity).expect("parses");
        prop_assert_eq!(back.len(), queries.len());
        for (a, b) in back.iter().zip(&queries) {
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.label.affinity(), b.label.affinity());
        }
    }

    /// Corrupting any single data cell of a valid edge CSV into a
    /// non-numeric token must produce a ParseError carrying that line's
    /// number — never a panic or silent acceptance.
    #[test]
    fn corrupted_edge_cell_is_rejected_with_line_number(
        stream in arb_stream(2),
        row_pick in 0usize..64,
        col_pick in 0usize..6,
    ) {
        prop_assume!(!stream.is_empty());
        let d = wrap(stream, vec![], Task::Classification, 2);
        let csv = edges_to_csv(&d);
        let mut lines: Vec<String> = csv.lines().map(String::from).collect();
        let row = 1 + (row_pick % (lines.len() - 1)); // skip header
        let mut cells: Vec<String> = lines[row].split(',').map(String::from).collect();
        let col = col_pick % cells.len();
        cells[col] = "bogus".into();
        lines[row] = cells.join(",");
        let corrupted = lines.join("\n");
        let errored = edges_from_csv(&corrupted).expect_err("corruption must be rejected");
        prop_assert_eq!(errored.line, row + 1, "error must point at the corrupted line");
    }
}

#[test]
fn exported_benchmarks_reimport_losslessly() {
    // The full seven-analogue suite must survive the interchange format:
    // this is the bring-your-own-data contract.
    for dataset in datasets::all_benchmarks() {
        let edges = edges_from_csv(&edges_to_csv(&dataset)).expect("edges parse");
        let queries =
            queries_from_csv(&queries_to_csv(&dataset), dataset.task).expect("queries parse");
        assert_eq!(edges.len(), dataset.stream.len(), "{}", dataset.name);
        assert_eq!(queries.len(), dataset.queries.len(), "{}", dataset.name);
        let reloaded = Dataset {
            name: dataset.name.clone(),
            task: dataset.task,
            stream: edges,
            queries,
            num_classes: dataset.num_classes,
            node_feats: None,
        };
        reloaded.validate();
    }
}
