//! Parameterized streams for the scalability experiment (paper Fig. 11:
//! near-linear training/inference time in the number of edges).
//!
//! The paper sweeps 100M–1B edges on a server; we sweep a laptop-scale range
//! with the same *shape* claim — time per edge independent of stream size.
//! Each edge carries one label query, matching the paper's setup.

use ctdg::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::common::{Dataset, Task};

/// Generates a classification stream with `num_edges` edges over
/// `num_nodes` nodes; one query per edge. Generation is O(num_edges).
pub fn scalability_stream(num_edges: usize, num_nodes: usize, seed: u64) -> Dataset {
    assert!(num_nodes >= 4, "need at least 4 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let num_classes = 4usize;
    let class_of = |v: usize| v % num_classes;
    let mut edges = Vec::with_capacity(num_edges);
    let mut queries = Vec::with_capacity(num_edges);
    let dt = 1.0 / num_edges.max(1) as f64;
    for i in 0..num_edges {
        let t = i as f64 * dt * 1000.0;
        let src = rng.random_range(0..num_nodes);
        // Mostly intra-class edges so the labels are learnable.
        let dst = if rng.random::<f64>() < 0.8 {
            let base = rng.random_range(0..num_nodes / num_classes);
            (base * num_classes + class_of(src)) % num_nodes
        } else {
            rng.random_range(0..num_nodes)
        };
        let dst = if dst == src { (dst + num_classes) % num_nodes } else { dst };
        edges.push(TemporalEdge::plain(src as NodeId, dst as NodeId, t));
        queries.push(PropertyQuery {
            node: src as NodeId,
            time: t,
            label: Label::Class(class_of(src)),
        });
    }
    let dataset = Dataset {
        name: format!("scalability-{num_edges}"),
        task: Task::Classification,
        stream: EdgeStream::new_unchecked(edges),
        queries,
        num_classes,
        node_feats: None,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_request() {
        let d = scalability_stream(5000, 100, 0);
        assert_eq!(d.stream.len(), 5000);
        assert_eq!(d.queries.len(), 5000);
        assert!(d.stream.num_nodes() <= 100);
    }

    #[test]
    fn no_self_loops() {
        let d = scalability_stream(2000, 40, 1);
        assert!(d.stream.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn labels_follow_class_rule() {
        let d = scalability_stream(1000, 40, 2);
        for q in &d.queries {
            assert_eq!(q.label.class(), q.node as usize % 4);
        }
    }
}
