//! Synthetic analogues of the dynamic-anomaly-detection datasets
//! (Reddit, Wikipedia, MOOC — Kumar et al. 2019).
//!
//! The real datasets are bipartite user→item interaction streams where a
//! small set of users enters an abnormal state (ban / course drop-out); the
//! label query attached to every interaction asks for the acting user's
//! current state. The generator reproduces the structure the paper's methods
//! exploit:
//!
//! * bipartite interactions with per-user preferred item clusters and
//!   cluster-conditioned edge features;
//! * abnormal episodes with onset times biased toward the end of the stream
//!   (so the anomaly ratio drifts over time — paper Fig. 3c);
//! * abnormal behaviour = bursty interactions with uniformly random items
//!   and shifted edge features;
//! * continuing user arrivals, so test-period queries hit unseen nodes
//!   (positional shift).

use ctdg::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::common::{
    class_prototypes, noisy_feature, sorted_times, weighted_choice, zipf_activity, Dataset, Task,
};

/// Parameters of an anomaly-detection stream.
#[derive(Debug, Clone)]
pub struct AnomalySpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of user nodes (ids `0..num_users`).
    pub num_users: usize,
    /// Number of item nodes (ids `num_users..num_users+num_items`).
    pub num_items: usize,
    /// Number of temporal edges (= number of label queries).
    pub num_edges: usize,
    /// Edge feature dimension `d_e`.
    pub edge_feat_dim: usize,
    /// Fraction of users that undergo one abnormal episode.
    pub abnormal_frac: f64,
    /// Activity multiplier while abnormal (burstiness).
    pub burst: f32,
    /// RNG seed.
    pub seed: u64,
}

/// Scaled-down Reddit analogue (Table II: 10,984 nodes / 672k edges / 172-d
/// edge features, scaled ~30×).
pub fn reddit() -> Dataset {
    generate_anomaly(&AnomalySpec {
        name: "reddit",
        num_users: 800,
        num_items: 160,
        num_edges: 20_000,
        edge_feat_dim: 8,
        abnormal_frac: 0.06,
        burst: 4.0,
        seed: 0xBEEF_0001,
    })
}

/// Scaled-down Wikipedia analogue (9,227 nodes / 157k edges).
pub fn wiki() -> Dataset {
    generate_anomaly(&AnomalySpec {
        name: "wiki",
        num_users: 600,
        num_items: 120,
        num_edges: 9_000,
        edge_feat_dim: 8,
        abnormal_frac: 0.05,
        burst: 5.0,
        seed: 0xBEEF_0002,
    })
}

/// Scaled-down MOOC analogue (7,047 nodes / 412k edges / 4-d features).
pub fn mooc() -> Dataset {
    generate_anomaly(&AnomalySpec {
        name: "mooc",
        num_users: 500,
        num_items: 50,
        num_edges: 14_000,
        edge_feat_dim: 4,
        abnormal_frac: 0.08,
        burst: 3.0,
        seed: 0xBEEF_0003,
    })
}

const HORIZON: f64 = 1000.0;
const ITEM_CLUSTERS: usize = 8;

/// Generates one anomaly-detection dataset from a spec.
pub fn generate_anomaly(spec: &AnomalySpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let u = spec.num_users;
    let items = spec.num_items;

    // Item clusters and their edge-feature prototypes; one extra "abnormal"
    // prototype far from all cluster prototypes.
    let item_cluster: Vec<usize> = (0..items).map(|_| rng.random_range(0..ITEM_CLUSTERS)).collect();
    let protos = class_prototypes(ITEM_CLUSTERS + 1, spec.edge_feat_dim, &mut rng);
    let abnormal_proto = &protos[ITEM_CLUSTERS];

    // Users: arrival times (mass early, tail late → unseen test users),
    // Zipf activity, preferred cluster.
    let arrival: Vec<f64> = (0..u)
        .map(|_| {
            let x: f64 = rng.random::<f64>();
            HORIZON * 0.9 * x * x
        })
        .collect();
    let activity = zipf_activity(u, 0.9, &mut rng);
    let pref_cluster: Vec<usize> = (0..u).map(|_| rng.random_range(0..ITEM_CLUSTERS)).collect();

    // Abnormal episodes, onset biased late (property-distribution drift).
    let mut episode: Vec<Option<(f64, f64)>> = vec![None; u];
    let n_abnormal = ((u as f64) * spec.abnormal_frac).round() as usize;
    for _ in 0..n_abnormal {
        let user = rng.random_range(0..u);
        let onset = HORIZON * (0.25 + 0.75 * rng.random::<f64>().sqrt());
        let duration = HORIZON * (0.05 + 0.2 * rng.random::<f64>());
        episode[user] = Some((onset, (onset + duration).min(HORIZON)));
    }
    let is_abnormal =
        |user: usize, t: f64| episode[user].is_some_and(|(a, b)| t >= a && t < b);

    // Items per cluster for preferred-item sampling.
    let mut cluster_items: Vec<Vec<usize>> = vec![Vec::new(); ITEM_CLUSTERS];
    for (i, &c) in item_cluster.iter().enumerate() {
        cluster_items[c].push(i);
    }
    for list in &mut cluster_items {
        if list.is_empty() {
            list.push(0); // degenerate guard for tiny item sets
        }
    }

    let times = sorted_times(spec.num_edges, HORIZON, &mut rng);
    let mut edges = Vec::with_capacity(spec.num_edges);
    let mut queries = Vec::with_capacity(spec.num_edges);
    let mut weights_buf = vec![0.0f32; u];
    for &t in &times {
        for (i, w) in weights_buf.iter_mut().enumerate() {
            *w = if arrival[i] <= t {
                activity[i] * if is_abnormal(i, t) { spec.burst } else { 1.0 }
            } else {
                0.0
            };
        }
        let Some(user) = weighted_choice(&weights_buf, |_| true, &mut rng) else {
            continue;
        };
        let abnormal = is_abnormal(user, t);
        let item = if abnormal {
            rng.random_range(0..items)
        } else if rng.random::<f64>() < 0.8 {
            let list = &cluster_items[pref_cluster[user]];
            list[rng.random_range(0..list.len())]
        } else {
            rng.random_range(0..items)
        };
        let proto = if abnormal { abnormal_proto } else { &protos[item_cluster[item]] };
        let feat = noisy_feature(proto, 0.6, &mut rng);
        edges.push(TemporalEdge {
            src: user as NodeId,
            dst: (u + item) as NodeId,
            feat: feat.into(),
            weight: 1.0,
            time: t,
        });
        queries.push(PropertyQuery {
            node: user as NodeId,
            time: t,
            label: Label::Class(abnormal as usize),
        });
    }

    let dataset = Dataset {
        name: spec.name.to_string(),
        task: Task::Anomaly,
        stream: EdgeStream::new_unchecked(edges),
        queries,
        num_classes: 2,
        node_feats: None,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reddit_shape() {
        let d = reddit();
        assert_eq!(d.task, Task::Anomaly);
        assert!(d.stream.len() > 19_000);
        assert_eq!(d.stream.len(), d.queries.len());
        assert_eq!(d.stream.feat_dim(), 8);
        assert_eq!(d.num_classes, 2);
    }

    #[test]
    fn bipartite_structure() {
        let spec = AnomalySpec {
            name: "t",
            num_users: 50,
            num_items: 10,
            num_edges: 2000,
            edge_feat_dim: 4,
            abnormal_frac: 0.1,
            burst: 3.0,
            seed: 1,
        };
        let d = generate_anomaly(&spec);
        for e in d.stream.edges() {
            assert!((e.src as usize) < 50, "src must be a user");
            assert!((e.dst as usize) >= 50 && (e.dst as usize) < 60, "dst must be an item");
        }
    }

    #[test]
    fn anomaly_ratio_drifts_upward() {
        let d = reddit();
        let n = d.queries.len();
        let ratio = |qs: &[PropertyQuery]| {
            qs.iter().filter(|q| q.label.class() == 1).count() as f64 / qs.len() as f64
        };
        let early = ratio(&d.queries[..n / 4]);
        let late = ratio(&d.queries[3 * n / 4..]);
        assert!(
            late > early,
            "anomaly ratio should drift upward: early {early:.4} late {late:.4}"
        );
    }

    #[test]
    fn has_anomalies_but_imbalanced() {
        let d = mooc();
        let pos = d.queries.iter().filter(|q| q.label.class() == 1).count();
        let frac = pos as f64 / d.queries.len() as f64;
        assert!(frac > 0.005 && frac < 0.35, "anomaly fraction {frac}");
    }

    #[test]
    fn unseen_users_appear_after_training_period() {
        let d = wiki();
        let t_train = d.stream.time_at_fraction(0.1);
        let mut seen = std::collections::HashSet::new();
        for e in d.stream.edges() {
            if e.time <= t_train {
                seen.insert(e.src);
            }
        }
        let new_users = d
            .stream
            .edges()
            .iter()
            .filter(|e| e.time > t_train && !seen.contains(&e.src))
            .count();
        assert!(new_users > 0, "expected user arrivals after the training period");
    }

    #[test]
    fn deterministic() {
        let a = mooc();
        let b = mooc();
        assert_eq!(a.stream.edges().len(), b.stream.edges().len());
        assert_eq!(a.stream.edges()[0], b.stream.edges()[0]);
        assert_eq!(a.queries[100], b.queries[100]);
    }
}
