//! Distribution-shift diagnostics over edge streams (the paper's Fig. 3
//! evidence, packaged as a reusable library).
//!
//! Three measurable shift families from §II-C, each reported per time
//! bucket so drift is visible as a trend:
//!
//! * **positional** — arrival cohorts move through embedding space
//!   ([`cohort_drift`]);
//! * **structural** — average degree and PageRank concentration change
//!   ([`degree_trend`], [`pagerank_concentration_trend`]);
//! * **property** — the label distribution changes ([`label_ratio_trend`]).

use ctdg::{DegreeTracker, GraphSnapshot};
use embed::{pagerank, PageRankConfig};
use nn::Matrix;

use crate::common::Dataset;

/// Per-cohort summary of positional drift: nodes are grouped by the time
/// bucket of their first appearance, and each cohort's mean embedding is
/// reported along with its size.
#[derive(Debug, Clone)]
pub struct CohortDrift {
    /// `(buckets, dim)` mean embedding per arrival cohort.
    pub cohort_means: Matrix,
    /// Nodes per cohort.
    pub counts: Vec<usize>,
    /// Sum of consecutive-cohort mean distances — a single drift scalar
    /// (0 for a stationary arrival process).
    pub cumulative_drift: f64,
}

/// Groups nodes into `buckets` arrival cohorts and averages the given
/// per-node `embeddings` (`(num_nodes, dim)`) within each cohort.
pub fn cohort_drift(dataset: &Dataset, embeddings: &Matrix, buckets: usize) -> CohortDrift {
    assert!(buckets > 0);
    let stream = &dataset.stream;
    let n_edges = stream.len().max(1);
    let mut first_seen = vec![usize::MAX; stream.num_nodes()];
    for (i, e) in stream.edges().iter().enumerate() {
        for v in [e.src, e.dst] {
            let slot = &mut first_seen[v as usize];
            if *slot == usize::MAX {
                *slot = (i * buckets / n_edges).min(buckets - 1);
            }
        }
    }
    let dim = embeddings.cols();
    let mut cohort_means = Matrix::zeros(buckets, dim);
    let mut counts = vec![0usize; buckets];
    for (v, &b) in first_seen.iter().enumerate() {
        if b == usize::MAX || v >= embeddings.rows() {
            continue;
        }
        counts[b] += 1;
        for (o, &x) in cohort_means.row_mut(b).iter_mut().zip(embeddings.row(v)) {
            *o += x;
        }
    }
    for (b, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f32;
            cohort_means.row_mut(b).iter_mut().for_each(|x| *x *= inv);
        }
    }
    let mut cumulative_drift = 0.0f64;
    for b in 1..buckets {
        if counts[b] == 0 || counts[b - 1] == 0 {
            continue;
        }
        let d: f64 = cohort_means
            .row(b)
            .iter()
            .zip(cohort_means.row(b - 1))
            .map(|(a, c)| ((a - c) * (a - c)) as f64)
            .sum();
        cumulative_drift += d.sqrt();
    }
    CohortDrift { cohort_means, counts, cumulative_drift }
}

/// Average active-node degree at the end of each time bucket — rising
/// values are the paper's Fig. 3(b) structural shift.
pub fn degree_trend(dataset: &Dataset, buckets: usize) -> Vec<f64> {
    assert!(buckets > 0);
    let stream = &dataset.stream;
    let n_edges = stream.len();
    let mut deg = DegreeTracker::new(stream.num_nodes());
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let start = b * n_edges / buckets;
        let end = (b + 1) * n_edges / buckets;
        for e in &stream.edges()[start..end] {
            deg.update(e);
        }
        out.push(deg.mean_active_degree());
    }
    out
}

/// PageRank concentration (the sum of the top-decile scores) of each
/// bucket's *cumulative* snapshot. A rising trend means structural mass is
/// consolidating onto hubs — a structural distribution shift invisible to
/// plain degree averages.
pub fn pagerank_concentration_trend(dataset: &Dataset, buckets: usize) -> Vec<f64> {
    assert!(buckets > 0);
    let stream = &dataset.stream;
    let n_edges = stream.len();
    let cfg = PageRankConfig::default();
    (0..buckets)
        .map(|b| {
            let prefix = ((b + 1) * n_edges / buckets).max(1).min(n_edges);
            let snap = GraphSnapshot::from_stream_prefix(stream, prefix);
            let mut pr = pagerank(&snap, &cfg);
            if pr.is_empty() {
                return 0.0;
            }
            pr.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top = (pr.len() / 10).max(1);
            pr[..top].iter().sum()
        })
        .collect()
}

/// Fraction of queries in each bucket whose class equals `class` — the
/// paper's Fig. 3(c) property shift. Buckets with no queries report 0.
pub fn label_ratio_trend(dataset: &Dataset, class: usize, buckets: usize) -> Vec<f64> {
    assert!(buckets > 0);
    let nq = dataset.queries.len();
    (0..buckets)
        .map(|b| {
            let qs = &dataset.queries[b * nq / buckets..(b + 1) * nq / buckets];
            if qs.is_empty() {
                return 0.0;
            }
            qs.iter().filter(|q| q.label.class() == class).count() as f64 / qs.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::reddit;
    use ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};

    fn two_phase_dataset() -> Dataset {
        // First half: nodes 0..10 interact; second half: nodes 10..20 —
        // a maximal positional shift between arrival cohorts.
        let mut edges = Vec::new();
        for i in 0..200u32 {
            let base = if i < 100 { 0 } else { 10 };
            edges.push(TemporalEdge::plain(
                base + (i % 10),
                base + ((i + 1) % 10),
                i as f64,
            ));
        }
        let queries = (0..100)
            .map(|i| PropertyQuery {
                node: (i % 20) as u32,
                time: 2.0 * i as f64,
                label: Label::Class((i >= 50) as usize),
            })
            .collect();
        Dataset {
            name: "two-phase".into(),
            task: crate::Task::Anomaly,
            stream: EdgeStream::new_unchecked(edges),
            queries,
            num_classes: 2,
            node_feats: None,
        }
    }

    #[test]
    fn cohort_drift_detects_planted_shift() {
        let d = two_phase_dataset();
        // One-hot community indicator embeddings: drift must be large.
        let emb = Matrix::from_fn(20, 2, |v, c| if (v >= 10) == (c == 1) { 1.0 } else { 0.0 });
        let shifted = cohort_drift(&d, &emb, 2);
        assert!(shifted.counts[0] >= 10 && shifted.counts[1] >= 10);
        assert!(
            shifted.cumulative_drift > 1.0,
            "planted cohort shift must register: {}",
            shifted.cumulative_drift
        );
        // A constant embedding shows no drift.
        let flat = Matrix::filled(20, 2, 1.0);
        assert!(cohort_drift(&d, &flat, 2).cumulative_drift < 1e-9);
    }

    #[test]
    fn degree_trend_is_monotone_for_cumulative_degrees() {
        let d = two_phase_dataset();
        let trend = degree_trend(&d, 4);
        assert_eq!(trend.len(), 4);
        assert!(trend.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn label_ratio_trend_tracks_planted_property_shift() {
        let d = two_phase_dataset();
        let trend = label_ratio_trend(&d, 1, 2);
        assert!(trend[0] < 0.05 && trend[1] > 0.95, "{trend:?}");
    }

    #[test]
    fn pagerank_concentration_is_a_valid_share() {
        let d = two_phase_dataset();
        for &x in &pagerank_concentration_trend(&d, 3) {
            assert!((0.0..=1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn reddit_analogue_exhibits_all_three_shifts() {
        // The generator plants all three Fig. 3 drift families; the
        // diagnostics must see them.
        let d = reddit();
        let deg = degree_trend(&d, 8);
        assert!(
            deg.last().unwrap() > &(deg[0] * 1.5),
            "average degree must grow: {deg:?}"
        );
        let anomaly = label_ratio_trend(&d, 1, 8);
        assert!(
            anomaly.last().unwrap() > &(anomaly[0] + 0.02),
            "anomaly ratio must rise: {anomaly:?}"
        );
    }
}
