//! Plain-text (CSV) export and import of datasets, so streams generated
//! here can be consumed by other tooling (plotting, external baselines) and
//! external CTDGs can be loaded into this harness.
//!
//! Two files describe a dataset:
//!
//! * `<name>.edges.csv` — `src,dst,time,weight[,f0,f1,…]` rows in
//!   chronological order;
//! * `<name>.queries.csv` — `node,time,label` rows for classification and
//!   anomaly tasks, or `node,time,a0,a1,…` rows for affinity tasks.

use std::fmt::Write as _;
use std::path::Path;

use ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};

use crate::common::{Dataset, Task};

/// Serializes the edge stream as CSV (with a header line).
pub fn edges_to_csv(dataset: &Dataset) -> String {
    let de = dataset.stream.feat_dim();
    let mut out = String::from("src,dst,time,weight");
    for i in 0..de {
        let _ = write!(out, ",f{i}");
    }
    out.push('\n');
    for e in dataset.stream.edges() {
        let _ = write!(out, "{},{},{},{}", e.src, e.dst, e.time, e.weight);
        for v in e.feat.iter() {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Serializes the label queries as CSV (with a header line).
pub fn queries_to_csv(dataset: &Dataset) -> String {
    let mut out = match dataset.task {
        Task::Affinity => {
            let mut h = String::from("node,time");
            for i in 0..dataset.num_classes {
                let _ = write!(h, ",a{i}");
            }
            h
        }
        _ => String::from("node,time,label"),
    };
    out.push('\n');
    for q in &dataset.queries {
        let _ = write!(out, "{},{}", q.node, q.time);
        match &q.label {
            Label::Class(c) => {
                let _ = write!(out, ",{c}");
            }
            Label::Affinity(a) => {
                for v in a.iter() {
                    let _ = write!(out, ",{v}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Writes `<dir>/<name>.edges.csv` and `<dir>/<name>.queries.csv`.
pub fn export_csv(dataset: &Dataset, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.edges.csv", dataset.name)), edges_to_csv(dataset))?;
    std::fs::write(dir.join(format!("{}.queries.csv", dataset.name)), queries_to_csv(dataset))?;
    Ok(())
}

/// Errors raised while parsing dataset CSVs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the offending file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses an edge CSV produced by [`edges_to_csv`] (header required).
pub fn edges_from_csv(text: &str) -> Result<EdgeStream, ParseError> {
    let mut edges = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 4 {
            return Err(err(i + 1, "expected at least src,dst,time,weight"));
        }
        let parse_f =
            |s: &str| s.trim().parse::<f64>().map_err(|e| err(i + 1, format!("{s:?}: {e}")));
        let src = cells[0]
            .trim()
            .parse::<u32>()
            .map_err(|e| err(i + 1, format!("src: {e}")))?;
        let dst = cells[1]
            .trim()
            .parse::<u32>()
            .map_err(|e| err(i + 1, format!("dst: {e}")))?;
        let time = parse_f(cells[2])?;
        let weight = parse_f(cells[3])? as f32;
        let feat: Vec<f32> = cells[4..]
            .iter()
            .map(|s| parse_f(s).map(|v| v as f32))
            .collect::<Result<_, _>>()?;
        edges.push(TemporalEdge { src, dst, feat: feat.into(), weight, time });
    }
    EdgeStream::new(edges).map_err(|e| err(0, e.to_string()))
}

/// Parses a query CSV produced by [`queries_to_csv`]; `task` selects the
/// label layout.
pub fn queries_from_csv(text: &str, task: Task) -> Result<Vec<PropertyQuery>, ParseError> {
    let mut queries = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 3 {
            return Err(err(i + 1, "expected at least node,time,label"));
        }
        let node = cells[0]
            .trim()
            .parse::<u32>()
            .map_err(|e| err(i + 1, format!("node: {e}")))?;
        let time = cells[1]
            .trim()
            .parse::<f64>()
            .map_err(|e| err(i + 1, format!("time: {e}")))?;
        let label = match task {
            Task::Affinity => {
                let a: Vec<f32> = cells[2..]
                    .iter()
                    .map(|s| {
                        s.trim()
                            .parse::<f32>()
                            .map_err(|e| err(i + 1, format!("affinity: {e}")))
                    })
                    .collect::<Result<_, _>>()?;
                Label::Affinity(a.into())
            }
            _ => Label::Class(
                cells[2]
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| err(i + 1, format!("label: {e}")))?,
            ),
        };
        queries.push(PropertyQuery { node, time, label });
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthetic_shift, tgbn_trade};

    #[test]
    fn classification_roundtrip() {
        let d = crate::common::Dataset {
            queries: synthetic_shift(50, 1).queries[..200].to_vec(),
            ..synthetic_shift(50, 1)
        };
        let stream = edges_from_csv(&edges_to_csv(&d)).unwrap();
        assert_eq!(stream.len(), d.stream.len());
        assert_eq!(stream.edges()[5], d.stream.edges()[5]);
        let queries = queries_from_csv(&queries_to_csv(&d), d.task).unwrap();
        assert_eq!(queries.len(), d.queries.len());
        assert_eq!(queries[7], d.queries[7]);
    }

    #[test]
    fn affinity_roundtrip() {
        let d = tgbn_trade();
        let queries = queries_from_csv(&queries_to_csv(&d), d.task).unwrap();
        assert_eq!(queries.len(), d.queries.len());
        let a = queries[3].label.affinity();
        let b = d.queries[3].label.affinity();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn edge_features_roundtrip() {
        let d = crate::anomaly::generate_anomaly(&crate::AnomalySpec {
            name: "t",
            num_users: 20,
            num_items: 5,
            num_edges: 300,
            edge_feat_dim: 3,
            abnormal_frac: 0.1,
            burst: 2.0,
            seed: 4,
        });
        let stream = edges_from_csv(&edges_to_csv(&d)).unwrap();
        assert_eq!(stream.feat_dim(), 3);
        for (a, b) in stream.edges().iter().zip(d.stream.edges()).take(20) {
            for (x, y) in a.feat.iter().zip(b.feat.iter()) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "src,dst,time,weight\n1,2,notatime,1.0\n";
        let e = edges_from_csv(bad).unwrap_err();
        assert_eq!(e.line, 2);
        let bad_q = "node,time,label\nxyz,1.0,0\n";
        let e = queries_from_csv(bad_q, Task::Classification).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn export_writes_both_files() {
        let dir = std::env::temp_dir().join("splash_csv_test");
        let d = crate::common::Dataset {
            queries: synthetic_shift(50, 2).queries[..50].to_vec(),
            ..synthetic_shift(50, 2)
        };
        export_csv(&d, &dir).unwrap();
        assert!(dir.join("synthetic-50.edges.csv").exists());
        assert!(dir.join("synthetic-50.queries.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
