//! Synthetic analogues of the node-affinity-prediction datasets
//! (TGBN-trade, TGBN-genre — Huang et al., Temporal Graph Benchmark).
//!
//! In TGBN datasets each source node has a slowly drifting affinity
//! distribution over a fixed candidate set (trading partners / music
//! genres); edge weights are realized affinities, and the label at time `t`
//! is the normalized sum of the node's future edge weights over a window
//! `[t, t + T_w]` (paper §III, Example 3). Preference drift plus occasional
//! abrupt jumps create the distribution shift regime where the paper reports
//! its largest gains (Table III: TGBN-trade +13.55%).

use ctdg::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::common::{sorted_times, weighted_choice, zipf_activity, Dataset, Task};

/// Parameters of an affinity-prediction stream.
#[derive(Debug, Clone)]
pub struct AffinitySpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of source nodes.
    pub num_sources: usize,
    /// Number of destination (candidate) nodes; the affinity dimension `d_a`.
    pub num_dests: usize,
    /// Whether sources and destinations share one id space (trade) or are
    /// disjoint (genre, bipartite).
    pub shared_id_space: bool,
    /// Number of temporal edges.
    pub num_edges: usize,
    /// Number of label checkpoints (queries fire for every active source at
    /// each checkpoint).
    pub num_checkpoints: usize,
    /// Future window `T_w` for the affinity labels.
    pub window: f64,
    /// Number of preferred destinations per source.
    pub pref_size: usize,
    /// Per-segment logit noise (slow drift).
    pub drift: f32,
    /// Probability a source re-draws its preferred set at a segment boundary
    /// (abrupt shift).
    pub jump_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Scaled-down TGBN-trade analogue (Table II: 255 nodes / 468k weighted
/// edges, scaled to 64 nodes / 28k edges).
///
/// The edge count and label window are sized so each label aggregates
/// roughly 15–20 realized edges — TGBN's yearly trade totals are dense, and
/// with too few draws per window the labels degenerate into sampling noise
/// that floors every method's NDCG (the real datasets average thousands of
/// edges per node).
pub fn tgbn_trade() -> Dataset {
    generate_affinity(&AffinitySpec {
        name: "tgbn-trade",
        num_sources: 64,
        num_dests: 64,
        shared_id_space: true,
        num_edges: 28_000,
        num_checkpoints: 40,
        window: 40.0,
        pref_size: 6,
        drift: 0.6,
        jump_prob: 0.08,
        seed: 0xFEED_0001,
    })
}

/// Scaled-down TGBN-genre analogue (1,505 nodes / 17.8M weighted edges,
/// scaled to 250 users × 48 genres / 40k edges). Sized for ~8–10 realized
/// edges per label (see [`tgbn_trade`] on label density).
pub fn tgbn_genre() -> Dataset {
    generate_affinity(&AffinitySpec {
        name: "tgbn-genre",
        num_sources: 250,
        num_dests: 48,
        shared_id_space: false,
        num_edges: 40_000,
        num_checkpoints: 30,
        window: 50.0,
        pref_size: 4,
        drift: 0.5,
        jump_prob: 0.05,
        seed: 0xFEED_0002,
    })
}

const HORIZON: f64 = 1000.0;
const SEGMENTS: usize = 20;

/// Generates one affinity-prediction dataset from a spec.
pub fn generate_affinity(spec: &AffinitySpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let s = spec.num_sources;
    let d = spec.num_dests;
    if spec.shared_id_space {
        assert_eq!(s, d, "shared id space requires num_sources == num_dests");
    }

    // Per-segment preference distributions: logits drift; occasional jumps.
    let mut logits: Vec<Vec<f32>> = (0..s)
        .map(|_| {
            let mut l = vec![0.0f32; d];
            for _ in 0..spec.pref_size {
                l[rng.random_range(0..d)] += 3.0;
            }
            l
        })
        .collect();
    let mut prefs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(SEGMENTS); // [segment][source] -> dist
    for seg in 0..SEGMENTS {
        if seg > 0 {
            for l in logits.iter_mut() {
                if rng.random::<f64>() < spec.jump_prob {
                    l.iter_mut().for_each(|v| *v = 0.0);
                    for _ in 0..spec.pref_size {
                        l[rng.random_range(0..d)] += 3.0;
                    }
                } else {
                    for v in l.iter_mut() {
                        *v += nn::randn(&mut rng) * spec.drift;
                    }
                }
            }
        }
        prefs.push(
            logits
                .iter()
                .map(|l| {
                    let max = l.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let exps: Vec<f32> = l.iter().map(|&v| (v - max).exp()).collect();
                    let sum: f32 = exps.iter().sum();
                    exps.iter().map(|&e| e / sum).collect()
                })
                .collect(),
        );
    }
    let segment_of = |t: f64| ((t / HORIZON * SEGMENTS as f64) as usize).min(SEGMENTS - 1);

    // Edges: source by Zipf activity, destination from the segment's
    // preference distribution, log-normal weights.
    let activity = zipf_activity(s, 0.7, &mut rng);
    let times = sorted_times(spec.num_edges, HORIZON, &mut rng);
    let mut edges = Vec::with_capacity(spec.num_edges);
    for &t in &times {
        let Some(src) = weighted_choice(&activity, |_| true, &mut rng) else { continue };
        let pref = &prefs[segment_of(t)][src];
        let Some(dst) = weighted_choice(pref, |j| !spec.shared_id_space || j != src, &mut rng)
        else {
            continue;
        };
        let dst_id = if spec.shared_id_space { dst } else { s + dst };
        let weight = (nn::randn(&mut rng) * 0.5).exp();
        edges.push(TemporalEdge::weighted(src as NodeId, dst_id as NodeId, weight, t));
    }

    // Labels: at each checkpoint, each source with future-window activity
    // gets its normalized future affinity vector.
    let mut queries = Vec::new();
    let first_cp = HORIZON * 0.02;
    let cp_step = (HORIZON - spec.window - first_cp) / spec.num_checkpoints as f64;
    for cp in 0..spec.num_checkpoints {
        let t = first_cp + cp as f64 * cp_step;
        let mut sums = vec![vec![0.0f32; d]; s];
        for e in &edges {
            if e.time >= t && e.time < t + spec.window {
                let dst_local = if spec.shared_id_space {
                    e.dst as usize
                } else {
                    e.dst as usize - s
                };
                sums[e.src as usize][dst_local] += e.weight;
            }
        }
        for (src, row) in sums.iter().enumerate() {
            let total: f32 = row.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let normalized: Vec<f32> = row.iter().map(|&v| v / total).collect();
            queries.push(PropertyQuery {
                node: src as NodeId,
                time: t,
                label: Label::Affinity(normalized.into()),
            });
        }
    }

    let dataset = Dataset {
        name: spec.name.to_string(),
        task: Task::Affinity,
        stream: EdgeStream::new_unchecked(edges),
        queries,
        num_classes: d,
        node_feats: None,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trade_shape() {
        let d = tgbn_trade();
        assert_eq!(d.task, Task::Affinity);
        assert_eq!(d.num_classes, 64);
        assert!(d.stream.len() > 11_000);
        assert!(!d.queries.is_empty());
    }

    #[test]
    fn genre_is_bipartite() {
        let d = tgbn_genre();
        for e in d.stream.edges() {
            assert!((e.src as usize) < 250);
            assert!((e.dst as usize) >= 250);
        }
    }

    #[test]
    fn labels_are_normalized_distributions() {
        let d = tgbn_trade();
        for q in d.queries.iter().take(200) {
            let a = q.label.affinity();
            let sum: f32 = a.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "affinity sums to {sum}");
            assert!(a.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn labels_match_future_window() {
        // Recompute one query's label from the raw stream.
        let spec = AffinitySpec {
            name: "t",
            num_sources: 10,
            num_dests: 10,
            shared_id_space: true,
            num_edges: 800,
            num_checkpoints: 5,
            window: 100.0,
            pref_size: 3,
            drift: 0.3,
            jump_prob: 0.1,
            seed: 7,
        };
        let d = generate_affinity(&spec);
        let q = &d.queries[0];
        let mut expected = vec![0.0f32; 10];
        for e in d.stream.edges() {
            if e.src == q.node && e.time >= q.time && e.time < q.time + spec.window {
                expected[e.dst as usize] += e.weight;
            }
        }
        let total: f32 = expected.iter().sum();
        assert!(total > 0.0);
        for (a, b) in q.label.affinity().iter().zip(&expected) {
            assert!((a - b / total).abs() < 1e-5);
        }
    }

    #[test]
    fn weights_are_positive_and_varied() {
        let d = tgbn_trade();
        let w: Vec<f32> = d.stream.edges().iter().map(|e| e.weight).collect();
        assert!(w.iter().all(|&x| x > 0.0));
        let mean = w.iter().sum::<f32>() / w.len() as f32;
        let var = w.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / w.len() as f32;
        assert!(var > 0.01, "weights should vary, var {var}");
    }

    #[test]
    fn preferences_shift_over_time() {
        // The set of destinations a fixed source uses should differ between
        // the first and last quarter of the stream for at least some source.
        let d = tgbn_trade();
        let edges = d.stream.edges();
        let n = edges.len();
        let mut any_shift = false;
        for src in 0..10u32 {
            let early: std::collections::HashSet<u32> = edges[..n / 4]
                .iter()
                .filter(|e| e.src == src)
                .map(|e| e.dst)
                .collect();
            let late: std::collections::HashSet<u32> = edges[3 * n / 4..]
                .iter()
                .filter(|e| e.src == src)
                .map(|e| e.dst)
                .collect();
            if !early.is_empty() && !late.is_empty() && early != late {
                any_shift = true;
                break;
            }
        }
        assert!(any_shift, "expected destination-set drift for some source");
    }
}
