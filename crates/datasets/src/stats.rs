//! Dataset statistics — the reproduction of the paper's Table II.

use crate::common::{Dataset, Task};

/// Summary statistics of one dataset, mirroring Table II's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Task instance.
    pub task: Task,
    /// Number of nodes that appear in the stream.
    pub num_nodes: usize,
    /// Number of temporal edges.
    pub num_edges: usize,
    /// Number of label queries.
    pub num_queries: usize,
    /// Whether external node features are present, and their dimension.
    pub node_feat_dim: Option<usize>,
    /// Edge feature dimension (0 when absent).
    pub edge_feat_dim: usize,
    /// Whether edges carry non-unit weights.
    pub has_edge_weights: bool,
    /// Number of labels (classes or affinity dimension).
    pub num_labels: usize,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let has_edge_weights = dataset
            .stream
            .edges()
            .iter()
            .any(|e| (e.weight - 1.0).abs() > 1e-9);
        Self {
            name: dataset.name.clone(),
            task: dataset.task,
            num_nodes: dataset.stream.num_nodes(),
            num_edges: dataset.stream.len(),
            num_queries: dataset.queries.len(),
            node_feat_dim: dataset.node_feats.as_ref().map(|m| m.cols()),
            edge_feat_dim: dataset.stream.feat_dim(),
            has_edge_weights,
            num_labels: dataset.num_classes,
        }
    }

    /// One aligned text row for the Table II harness.
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} {:>8} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8}",
            self.name,
            self.num_nodes,
            self.num_edges,
            self.num_queries,
            self.node_feat_dim.map_or("no".to_string(), |d| format!("yes({d})")),
            if self.edge_feat_dim > 0 {
                format!("yes({})", self.edge_feat_dim)
            } else {
                "no".to_string()
            },
            if self.has_edge_weights { "yes" } else { "no" },
            self.num_labels,
        )
    }

    /// The header matching [`Self::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>8} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8}",
            "dataset", "#nodes", "#edges", "#queries", "node-feat", "edge-feat", "edge-weight", "#labels"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{affinity, anomaly, classification};

    #[test]
    fn reddit_stats_match_table2_shape() {
        let s = DatasetStats::compute(&anomaly::reddit());
        assert_eq!(s.task, Task::Anomaly);
        assert_eq!(s.num_labels, 2);
        assert!(s.edge_feat_dim > 0, "Reddit analogue has edge features");
        assert!(s.node_feat_dim.is_none(), "Reddit analogue has no node features");
        assert!(!s.has_edge_weights);
        // queries == edges in the anomaly datasets (one query per interaction)
        assert_eq!(s.num_queries, s.num_edges);
    }

    #[test]
    fn gdelt_is_the_only_node_featured_dataset() {
        assert!(DatasetStats::compute(&classification::gdelt()).node_feat_dim.is_some());
        assert!(DatasetStats::compute(&classification::email_eu()).node_feat_dim.is_none());
        assert!(DatasetStats::compute(&anomaly::wiki()).node_feat_dim.is_none());
    }

    #[test]
    fn affinity_datasets_are_weighted_featureless() {
        for d in [affinity::tgbn_trade(), affinity::tgbn_genre()] {
            let s = DatasetStats::compute(&d);
            assert!(s.has_edge_weights, "{} should be weighted", s.name);
            assert_eq!(s.edge_feat_dim, 0);
        }
    }

    #[test]
    fn table_row_is_aligned() {
        let s = DatasetStats::compute(&anomaly::mooc());
        assert_eq!(s.table_row().split_whitespace().count(), 8);
        assert_eq!(DatasetStats::table_header().split_whitespace().count(), 8);
    }
}
