//! Synthetic analogues of the dynamic-node-classification datasets
//! (Email-EU — Paranjape et al. 2017; GDELT — Zhou et al. 2022).
//!
//! Email-EU is a communication network whose node labels are department
//! memberships; GDELT is a larger event network with many classes and
//! external node features. Both exhibit the shifts the paper studies: new
//! nodes keep arriving (positional shift), some nodes migrate between
//! communities over time (label dynamics, Example 1 / Fig. 1 of the paper),
//! and — for the GDELT analogue — class priors drift.

use ctdg::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge};
use nn::Matrix;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::common::{
    class_prototypes, noisy_feature, sorted_times, weighted_choice, zipf_activity, Dataset, Task,
};

/// Parameters of a classification stream.
#[derive(Debug, Clone)]
pub struct ClassificationSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of temporal edges.
    pub num_edges: usize,
    /// Number of label queries.
    pub num_queries: usize,
    /// Number of classes (departments/communities).
    pub num_classes: usize,
    /// Probability that an edge stays within the source's community.
    pub p_intra: f64,
    /// Fraction of nodes that migrate to another community mid-stream.
    pub migrate_frac: f64,
    /// External node feature dimension (GDELT analogue), if any.
    pub node_feat_dim: Option<usize>,
    /// Whether class priors drift over time (late arrivals concentrate in
    /// a subset of classes).
    pub prior_drift: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Scaled-down Email-EU analogue (Table II: 986 nodes / 332k edges /
/// 42 classes, scaled to 200 nodes / 12k edges / 10 classes).
pub fn email_eu() -> Dataset {
    generate_classification(&ClassificationSpec {
        name: "email-eu",
        num_nodes: 200,
        num_edges: 12_000,
        num_queries: 7_000,
        num_classes: 10,
        p_intra: 0.82,
        migrate_frac: 0.12,
        node_feat_dim: None,
        prior_drift: false,
        seed: 0xCAFE_0001,
    })
}

/// Scaled-down GDELT analogue (6,829 nodes / 1.9M edges / 81 classes /
/// 413-d node features, scaled to 450 nodes / 22k edges / 16 classes /
/// 16-d features).
pub fn gdelt() -> Dataset {
    generate_classification(&ClassificationSpec {
        name: "gdelt",
        num_nodes: 450,
        num_edges: 22_000,
        num_queries: 9_000,
        num_classes: 16,
        p_intra: 0.7,
        migrate_frac: 0.2,
        node_feat_dim: Some(16),
        prior_drift: true,
        seed: 0xCAFE_0002,
    })
}

const HORIZON: f64 = 1000.0;

/// Generates one classification dataset from a spec.
pub fn generate_classification(spec: &ClassificationSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.num_nodes;
    let c = spec.num_classes;

    // Arrivals: most mass early, arrivals continue through the stream.
    let arrival: Vec<f64> = (0..n)
        .map(|_| {
            let x: f64 = rng.random::<f64>();
            HORIZON * 0.9 * x * x
        })
        .collect();
    let activity = zipf_activity(n, 0.8, &mut rng);

    // Initial classes; under prior drift, late-arriving nodes concentrate
    // in the second half of the class space.
    let initial_class: Vec<usize> = (0..n)
        .map(|i| {
            if spec.prior_drift && arrival[i] > HORIZON * 0.4 {
                c / 2 + rng.random_range(0..c - c / 2)
            } else {
                rng.random_range(0..c)
            }
        })
        .collect();

    // Migration events: (time, new class) for a subset of nodes.
    let migration: Vec<Option<(f64, usize)>> = (0..n)
        .map(|_| {
            if rng.random::<f64>() < spec.migrate_frac {
                let t = HORIZON * (0.2 + 0.8 * rng.random::<f64>());
                let new_class = rng.random_range(0..c);
                Some((t, new_class))
            } else {
                None
            }
        })
        .collect();
    let class_at = |node: usize, t: f64| -> usize {
        match migration[node] {
            Some((mt, nc)) if t >= mt => nc,
            _ => initial_class[node],
        }
    };

    // External node features (GDELT): prototype of the *initial* class plus
    // noise. Features are static, so migrated nodes carry stale features —
    // exactly the weakly-informative-feature regime the paper discusses.
    let node_feats = spec.node_feat_dim.map(|d| {
        let protos = class_prototypes(c, d, &mut rng);
        let mut m = Matrix::zeros(n, d);
        for i in 0..n {
            m.set_row(i, &noisy_feature(&protos[initial_class[i]], 3.0, &mut rng));
        }
        m
    });

    // Edges.
    let times = sorted_times(spec.num_edges, HORIZON, &mut rng);
    let mut edges = Vec::with_capacity(spec.num_edges);
    let mut weights_buf = vec![0.0f32; n];
    for &t in &times {
        for (i, w) in weights_buf.iter_mut().enumerate() {
            *w = if arrival[i] <= t { activity[i] } else { 0.0 };
        }
        let Some(src) = weighted_choice(&weights_buf, |_| true, &mut rng) else {
            continue;
        };
        let src_class = class_at(src, t);
        let dst = if rng.random::<f64>() < spec.p_intra {
            weighted_choice(&weights_buf, |j| j != src && class_at(j, t) == src_class, &mut rng)
        } else {
            weighted_choice(&weights_buf, |j| j != src, &mut rng)
        };
        let Some(dst) = dst.or_else(|| weighted_choice(&weights_buf, |j| j != src, &mut rng))
        else {
            continue;
        };
        edges.push(TemporalEdge::plain(src as NodeId, dst as NodeId, t));
    }

    // Label queries at independent times on arrived nodes.
    let qtimes = sorted_times(spec.num_queries, HORIZON, &mut rng);
    let mut queries = Vec::with_capacity(spec.num_queries);
    for &t in &qtimes {
        for (i, w) in weights_buf.iter_mut().enumerate() {
            *w = if arrival[i] <= t { activity[i] } else { 0.0 };
        }
        let Some(node) = weighted_choice(&weights_buf, |_| true, &mut rng) else {
            continue;
        };
        queries.push(PropertyQuery {
            node: node as NodeId,
            time: t,
            label: Label::Class(class_at(node, t)),
        });
    }

    // Pad the node-feature matrix to the stream's dense id space (all ids
    // appear as endpoints, so sizes match; this guards tiny configs).
    let stream = EdgeStream::new_unchecked(edges);
    let node_feats = node_feats.map(|m| {
        if m.rows() == stream.num_nodes() {
            m
        } else {
            let mut padded = Matrix::zeros(stream.num_nodes(), m.cols());
            for i in 0..m.rows().min(stream.num_nodes()) {
                padded.set_row(i, m.row(i));
            }
            padded
        }
    });

    let dataset = Dataset {
        name: spec.name.to_string(),
        task: Task::Classification,
        stream,
        queries,
        num_classes: c,
        node_feats,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_eu_shape() {
        let d = email_eu();
        assert_eq!(d.task, Task::Classification);
        assert_eq!(d.num_classes, 10);
        assert!(d.stream.len() > 11_000);
        assert!(d.queries.len() > 6_000);
        assert!(d.node_feats.is_none());
    }

    #[test]
    fn gdelt_has_node_features() {
        let d = gdelt();
        let f = d.node_feats.as_ref().expect("gdelt carries node features");
        assert_eq!(f.rows(), d.stream.num_nodes());
        assert_eq!(f.cols(), 16);
    }

    #[test]
    fn edges_are_mostly_intra_community() {
        let d = email_eu();
        // Recover each node's majority query label as its "community".
        let mut label_of = vec![usize::MAX; d.stream.num_nodes()];
        for q in &d.queries {
            label_of[q.node as usize] = q.label.class();
        }
        let mut intra = 0usize;
        let mut known = 0usize;
        for e in d.stream.edges() {
            let (a, b) = (label_of[e.src as usize], label_of[e.dst as usize]);
            if a != usize::MAX && b != usize::MAX {
                known += 1;
                if a == b {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / known as f64;
        assert!(frac > 0.5, "intra-community edge fraction {frac}");
    }

    #[test]
    fn some_nodes_change_label_over_time() {
        let d = email_eu();
        let mut first: std::collections::HashMap<u32, usize> = Default::default();
        let mut changed = 0usize;
        for q in &d.queries {
            match first.entry(q.node) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(q.label.class());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != q.label.class() {
                        changed += 1;
                    }
                }
            }
        }
        assert!(changed > 0, "expected dynamic label changes");
    }

    #[test]
    fn gdelt_prior_drift() {
        let d = gdelt();
        let n = d.queries.len();
        let hi_class_frac = |qs: &[PropertyQuery]| {
            qs.iter().filter(|q| q.label.class() >= 8).count() as f64 / qs.len() as f64
        };
        let early = hi_class_frac(&d.queries[..n / 4]);
        let late = hi_class_frac(&d.queries[3 * n / 4..]);
        assert!(late > early, "class prior should drift: early {early:.3} late {late:.3}");
    }

    #[test]
    fn deterministic() {
        let a = email_eu();
        let b = email_eu();
        assert_eq!(a.queries[17], b.queries[17]);
        assert_eq!(a.stream.edges()[123], b.stream.edges()[123]);
    }
}
