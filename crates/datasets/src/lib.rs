//! Synthetic dataset substrate for the SPLASH reproduction.
//!
//! The paper evaluates on seven real-world CTDGs (Table II) that are not
//! redistributable here; this crate generates analogues that match their
//! published statistics (scaled down ~20–50×) and — more importantly — the
//! behavioural structure the evaluated methods rely on: community-
//! conditioned interactions, bursty anomalies, drifting labels, and
//! autocorrelated affinities, all with explicit distribution shift between
//! the training and test periods. See DESIGN.md §2 for the substitution
//! rationale.

pub mod affinity;
pub mod anomaly;
pub mod classification;
pub mod common;
pub mod drift;
pub mod io;
pub mod scalability;
pub mod stats;
pub mod synthetic_shift;

pub use affinity::{generate_affinity, tgbn_genre, tgbn_trade, AffinitySpec};
pub use anomaly::{generate_anomaly, mooc, reddit, wiki, AnomalySpec};
pub use classification::{email_eu, gdelt, generate_classification, ClassificationSpec};
pub use common::{Dataset, Task};
pub use drift::{cohort_drift, degree_trend, label_ratio_trend, pagerank_concentration_trend, CohortDrift};
pub use io::{edges_from_csv, edges_to_csv, export_csv, queries_from_csv, queries_to_csv};
pub use scalability::scalability_stream;
pub use stats::DatasetStats;
pub use synthetic_shift::synthetic_shift;

/// All seven real-dataset analogues, in the paper's Table II order.
pub fn all_benchmarks() -> Vec<Dataset> {
    vec![
        anomaly::reddit(),
        anomaly::wiki(),
        anomaly::mooc(),
        classification::email_eu(),
        classification::gdelt(),
        affinity::tgbn_trade(),
        affinity::tgbn_genre(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_cover_all_tasks() {
        let datasets = all_benchmarks();
        assert_eq!(datasets.len(), 7);
        let anomaly = datasets.iter().filter(|d| d.task == Task::Anomaly).count();
        let class = datasets.iter().filter(|d| d.task == Task::Classification).count();
        let affinity = datasets.iter().filter(|d| d.task == Task::Affinity).count();
        assert_eq!((anomaly, class, affinity), (3, 2, 2));
    }
}
