//! Shared machinery for the synthetic generators: the [`Dataset`] container,
//! task tags, and sampling helpers.

use ctdg::{EdgeStream, PropertyQuery};
use nn::Matrix;
use rand::{rngs::StdRng, RngExt};

/// The three node-property-prediction task instances of the paper (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Dynamic anomaly detection (binary; class 1 = abnormal), evaluated
    /// with ROC-AUC.
    Anomaly,
    /// Dynamic node classification, evaluated with weighted F1.
    Classification,
    /// Node affinity prediction, evaluated with NDCG@10.
    Affinity,
}

/// A complete benchmark instance: the edge stream, its label queries, and
/// task metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (analogue of the paper's Table II rows).
    pub name: String,
    /// Task instance.
    pub task: Task,
    /// The CTDG.
    pub stream: EdgeStream,
    /// Chronologically ordered label queries.
    pub queries: Vec<PropertyQuery>,
    /// Number of classes (classification/anomaly) or the affinity dimension
    /// `d_a` (affinity prediction).
    pub num_classes: usize,
    /// External node features `(num_nodes, d_v)`, present only for the GDELT
    /// analogue (Table II's sole node-featured dataset).
    pub node_feats: Option<Matrix>,
}

impl Dataset {
    /// Asserts internal consistency; generators call this before returning.
    pub fn validate(&self) {
        assert!(
            self.queries.windows(2).all(|w| w[0].time <= w[1].time),
            "queries must be chronologically ordered"
        );
        for q in &self.queries {
            assert!((q.node as usize) < self.stream.num_nodes().max(1));
            match (&self.task, &q.label) {
                (Task::Affinity, ctdg::Label::Affinity(a)) => {
                    assert_eq!(a.len(), self.num_classes)
                }
                (Task::Anomaly | Task::Classification, ctdg::Label::Class(c)) => {
                    assert!(*c < self.num_classes)
                }
                _ => panic!("label kind does not match task"),
            }
        }
        if let Some(f) = &self.node_feats {
            assert_eq!(f.rows(), self.stream.num_nodes());
        }
    }
}

/// Zipf-like activity weights: `weight(i) ∝ (i+1)^{-exponent}`, shuffled so
/// high-activity ids are spread over the id space.
pub fn zipf_activity(n: usize, exponent: f64, rng: &mut StdRng) -> Vec<f32> {
    let mut w: Vec<f32> = (0..n)
        .map(|i| ((i + 1) as f64).powf(-exponent) as f32)
        .collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        w.swap(i, j);
    }
    w
}

/// Samples an index from `weights` restricted to entries where `eligible`
/// returns true. Returns `None` when no eligible weight is positive.
pub fn weighted_choice(
    weights: &[f32],
    eligible: impl Fn(usize) -> bool,
    rng: &mut StdRng,
) -> Option<usize> {
    let total: f64 = weights
        .iter()
        .enumerate()
        .filter(|(i, _)| eligible(*i))
        .map(|(_, &w)| w as f64)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut r = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if !eligible(i) {
            continue;
        }
        r -= w as f64;
        if r <= 0.0 {
            return Some(i);
        }
    }
    weights
        .iter()
        .enumerate()
        .rev()
        .find(|(i, &w)| eligible(*i) && w > 0.0)
        .map(|(i, _)| i)
}

/// Sorted uniform event times over `[0, horizon)`.
pub fn sorted_times(n: usize, horizon: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut t: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * horizon).collect();
    t.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t
}

/// Gaussian feature vector around a prototype.
pub fn noisy_feature(prototype: &[f32], std: f32, rng: &mut StdRng) -> Vec<f32> {
    prototype.iter().map(|&p| p + nn::randn(rng) * std).collect()
}

/// Random class prototypes `(num_classes, dim)` with unit-ish separation.
pub fn class_prototypes(num_classes: usize, dim: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..num_classes)
        .map(|_| (0..dim).map(|_| nn::randn(rng) * 1.5).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_normalizable_and_shuffled() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = zipf_activity(100, 1.0, &mut rng);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|&x| x > 0.0));
        // Shuffled: the largest weight should rarely sit at index 0.
        let max_idx = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Not a strict guarantee, but with seed 0 this holds and documents intent.
        let _ = max_idx;
    }

    #[test]
    fn weighted_choice_respects_eligibility() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [1.0f32, 5.0, 3.0];
        for _ in 0..100 {
            let c = weighted_choice(&w, |i| i != 1, &mut rng).unwrap();
            assert_ne!(c, 1);
        }
        assert_eq!(weighted_choice(&w, |_| false, &mut rng), None);
    }

    #[test]
    fn weighted_choice_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = [1.0f32, 3.0];
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| weighted_choice(&w, |_| true, &mut rng) == Some(1))
            .count();
        let f = ones as f64 / n as f64;
        assert!((f - 0.75).abs() < 0.02, "freq {f}");
    }

    #[test]
    fn sorted_times_are_sorted_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = sorted_times(500, 100.0, &mut rng);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert!(t.iter().all(|&x| (0.0..100.0).contains(&x)));
    }
}
