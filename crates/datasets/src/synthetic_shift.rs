//! Synthetic-50/70/90: controlled-intensity distribution shift
//! (paper §V-A "Synthetic Datasets with Artificial Distribution Shifts",
//! evaluated in Fig. 12).
//!
//! The shift intensity `s ∈ {50, 70, 90}` jointly controls, after the
//! training period ends:
//!
//! * the fraction of post-shift activity carried by brand-new (unseen)
//!   nodes — positional shift;
//! * the fraction of old nodes that migrate to a different community (and
//!   therefore change label) — property shift;
//! * a post-shift change in interaction locality — structural shift.

use ctdg::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::common::{sorted_times, weighted_choice, zipf_activity, Dataset, Task};

const HORIZON: f64 = 1000.0;
/// The shift point: end of the train+val query range under the 10/10/80
/// protocol.
const T_SHIFT: f64 = 0.2 * HORIZON;
const NUM_CLASSES: usize = 5;

/// Generates a Synthetic-`intensity` dataset (`intensity` in 0..=100).
pub fn synthetic_shift(intensity: u32, seed: u64) -> Dataset {
    assert!(intensity <= 100, "shift intensity is a percentage");
    let s = intensity as f64 / 100.0;
    let mut rng = StdRng::seed_from_u64(seed ^ (intensity as u64) << 8);

    let n_old = 240usize;
    let n_new = 160usize;
    let n = n_old + n_new;
    let num_edges = 15_000usize;
    let num_queries = 8_000usize;

    // Old nodes are present from the start; new nodes arrive only after the
    // shift point, at a rate proportional to the intensity.
    let arrival: Vec<f64> = (0..n)
        .map(|i| {
            if i < n_old {
                HORIZON * 0.15 * rng.random::<f64>()
            } else {
                T_SHIFT + (HORIZON - T_SHIFT) * rng.random::<f64>()
            }
        })
        .collect();
    let mut activity = zipf_activity(n, 0.6, &mut rng);
    // New-node activity scales with intensity: at s = 0.9 most post-shift
    // interactions involve unseen nodes.
    let old_sum: f32 = activity[..n_old].iter().sum();
    let new_sum: f32 = activity[n_old..].iter().sum();
    if new_sum > 0.0 {
        let target = old_sum * (s / (1.0 - s + 1e-9)) as f32;
        let scale = target / new_sum;
        for a in activity[n_old..].iter_mut() {
            *a *= scale;
        }
    }

    // Communities; a fraction `0.4·s` of old nodes migrates, each at its own
    // time spread over the post-shift period. (Scaling by 0.4 keeps the
    // majority of the training signal valid even at intensity 90 — the
    // paper's shift degrades generalization but never inverts the
    // label-generating mechanism.)
    let initial: Vec<usize> = (0..n).map(|_| rng.random_range(0..NUM_CLASSES)).collect();
    let migrated: Vec<Option<(f64, usize)>> = (0..n)
        .map(|i| {
            if i < n_old && rng.random::<f64>() < 0.4 * s {
                let when = T_SHIFT + (HORIZON - T_SHIFT) * rng.random::<f64>();
                let to = (initial[i] + 1 + rng.random_range(0..NUM_CLASSES - 1)) % NUM_CLASSES;
                Some((when, to))
            } else {
                None
            }
        })
        .collect();
    let class_at = |node: usize, t: f64| -> usize {
        match migrated[node] {
            Some((when, nc)) if t >= when => nc,
            _ => initial[node],
        }
    };

    // Structural shift: intra-community probability drops with intensity
    // after the shift point.
    let p_intra_pre = 0.85;
    let p_intra_post = 0.85 - 0.2 * s;

    let times = sorted_times(num_edges, HORIZON, &mut rng);
    let mut edges = Vec::with_capacity(num_edges);
    let mut weights_buf = vec![0.0f32; n];
    for &t in &times {
        for (i, w) in weights_buf.iter_mut().enumerate() {
            *w = if arrival[i] <= t { activity[i] } else { 0.0 };
        }
        let Some(src) = weighted_choice(&weights_buf, |_| true, &mut rng) else { continue };
        let p_intra = if t < T_SHIFT { p_intra_pre } else { p_intra_post };
        let src_class = class_at(src, t);
        let dst = if rng.random::<f64>() < p_intra {
            weighted_choice(&weights_buf, |j| j != src && class_at(j, t) == src_class, &mut rng)
        } else {
            weighted_choice(&weights_buf, |j| j != src, &mut rng)
        };
        let Some(dst) = dst.or_else(|| weighted_choice(&weights_buf, |j| j != src, &mut rng))
        else {
            continue;
        };
        edges.push(TemporalEdge::plain(src as NodeId, dst as NodeId, t));
    }

    let qtimes = sorted_times(num_queries, HORIZON, &mut rng);
    let mut queries = Vec::with_capacity(num_queries);
    for &t in &qtimes {
        for (i, w) in weights_buf.iter_mut().enumerate() {
            *w = if arrival[i] <= t { activity[i] } else { 0.0 };
        }
        let Some(node) = weighted_choice(&weights_buf, |_| true, &mut rng) else { continue };
        queries.push(PropertyQuery {
            node: node as NodeId,
            time: t,
            label: Label::Class(class_at(node, t)),
        });
    }

    let dataset = Dataset {
        name: format!("synthetic-{intensity}"),
        task: Task::Classification,
        stream: EdgeStream::new_unchecked(edges),
        queries,
        num_classes: NUM_CLASSES,
        node_feats: None,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unseen_query_frac(d: &Dataset) -> f64 {
        let t_seen = {
            // seen period = first 20% of queries (train + val)
            let idx = d.queries.len() / 5;
            d.queries[idx].time
        };
        let mut seen = std::collections::HashSet::new();
        for e in d.stream.edges() {
            if e.time <= t_seen {
                seen.insert(e.src);
                seen.insert(e.dst);
            }
        }
        let test: Vec<_> = d.queries.iter().filter(|q| q.time > t_seen).collect();
        test.iter().filter(|q| !seen.contains(&q.node)).count() as f64 / test.len() as f64
    }

    #[test]
    fn intensity_controls_unseen_fraction() {
        let d50 = synthetic_shift(50, 1);
        let d90 = synthetic_shift(90, 1);
        let f50 = unseen_query_frac(&d50);
        let f90 = unseen_query_frac(&d90);
        assert!(
            f90 > f50 + 0.1,
            "unseen query fraction should grow with intensity: 50 → {f50:.3}, 90 → {f90:.3}"
        );
    }

    #[test]
    fn intensity_controls_label_migration() {
        let count_changed = |d: &Dataset| {
            let mut first: std::collections::HashMap<u32, usize> = Default::default();
            let mut changed = std::collections::HashSet::new();
            for q in &d.queries {
                match first.entry(q.node) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(q.label.class());
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != q.label.class() {
                            changed.insert(q.node);
                        }
                    }
                }
            }
            changed.len()
        };
        // Migration times are spread over the test period, so the *observed*
        // count saturates between nearby intensities; compare the extremes.
        let c0 = count_changed(&synthetic_shift(0, 2));
        let c90 = count_changed(&synthetic_shift(90, 2));
        assert!(c90 > c0, "label migrations: 0 → {c0}, 90 → {c90}");
        assert_eq!(c0, 0, "intensity 0 must have no migrations");
    }

    #[test]
    fn basic_shape() {
        let d = synthetic_shift(70, 0);
        assert_eq!(d.num_classes, NUM_CLASSES);
        assert!(d.stream.len() > 14_000);
        assert!(d.queries.len() > 7_000);
    }

    #[test]
    fn zero_intensity_has_no_new_node_queries() {
        let d = synthetic_shift(0, 3);
        assert!(unseen_query_frac(&d) < 0.05);
    }
}
