//! Biased second-order random walks (node2vec, Grover & Leskovec 2016).
//!
//! Walks are generated over a [`GraphSnapshot`] of the training prefix. The
//! transition from node `v` (having arrived from `u`) to neighbor `x` is
//! proportional to `Ω((v, x)) · bias(x)` with `bias = 1/p` when `x = u`,
//! `1` when `x` is adjacent to `u`, and `1/q` otherwise. Walk generation is
//! embarrassingly parallel and fans out over scoped threads.

use ctdg::{GraphSnapshot, NodeId};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Random-walk hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Walks started per active node (node2vec's `r`).
    pub walks_per_node: usize,
    /// Length of each walk, in nodes (node2vec's `l`).
    pub walk_length: usize,
    /// Return parameter `p` (smaller ⇒ more backtracking).
    pub p: f32,
    /// In-out parameter `q` (smaller ⇒ more exploration).
    pub q: f32,
    /// Number of worker threads for walk generation.
    pub threads: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self { walks_per_node: 8, walk_length: 20, p: 1.0, q: 1.0, threads: 4 }
    }
}

/// Samples one step from `v`, given the previous node (if any).
fn step(
    snapshot: &GraphSnapshot,
    v: NodeId,
    prev: Option<NodeId>,
    p: f32,
    q: f32,
    rng: &mut StdRng,
) -> Option<NodeId> {
    let neighbors = snapshot.neighbors(v);
    if neighbors.is_empty() {
        return None;
    }
    let mut cumulative = Vec::with_capacity(neighbors.len());
    let mut total = 0.0f64;
    match prev {
        None => {
            for &(x, w) in neighbors {
                total += w as f64;
                cumulative.push((x, total));
            }
        }
        Some(u) => {
            let u_adj = snapshot.neighbors(u);
            for &(x, w) in neighbors {
                let bias = if x == u {
                    1.0 / p
                } else if u_adj.binary_search_by_key(&x, |&(n, _)| n).is_ok() {
                    1.0
                } else {
                    1.0 / q
                };
                total += (w * bias) as f64;
                cumulative.push((x, total));
            }
        }
    }
    if total <= 0.0 {
        return None;
    }
    let r = rng.random::<f64>() * total;
    let idx = cumulative.partition_point(|&(_, c)| c < r);
    Some(cumulative[idx.min(cumulative.len() - 1)].0)
}

/// Generates one walk of up to `length` nodes starting at `start`.
fn walk_from(
    snapshot: &GraphSnapshot,
    start: NodeId,
    length: usize,
    p: f32,
    q: f32,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    walk.push(start);
    let mut prev = None;
    let mut cur = start;
    while walk.len() < length {
        match step(snapshot, cur, prev, p, q, rng) {
            Some(next) => {
                walk.push(next);
                prev = Some(cur);
                cur = next;
            }
            None => break,
        }
    }
    walk
}

/// Generates all walks over the snapshot's active nodes.
///
/// Deterministic for a fixed `(config, seed)`: each (node, repetition) pair
/// draws from its own seeded RNG, so thread scheduling cannot change the
/// output.
pub fn generate_walks(snapshot: &GraphSnapshot, config: &WalkConfig, seed: u64) -> Vec<Vec<NodeId>> {
    let active = snapshot.active_nodes();
    let jobs: Vec<(usize, NodeId)> = (0..config.walks_per_node)
        .flat_map(|r| active.iter().map(move |&v| (r, v)))
        .collect();
    let mut walks: Vec<Vec<NodeId>> = vec![Vec::new(); jobs.len()];
    let threads = config.threads.max(1);
    let chunk = jobs.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(walks.chunks_mut(chunk)) {
            scope.spawn(move || {
                for ((r, v), out) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                    // Stable per-job seed independent of threading.
                    let job_seed = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((*r as u64) << 32)
                        .wrapping_add(*v as u64);
                    let mut rng = StdRng::seed_from_u64(job_seed);
                    *out = walk_from(snapshot, *v, config.walk_length, config.p, config.q, &mut rng);
                }
            });
        }
    });
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, TemporalEdge};

    fn line_graph(n: u32) -> GraphSnapshot {
        let edges = (0..n - 1)
            .map(|i| TemporalEdge::plain(i, i + 1, i as f64))
            .collect();
        let stream = EdgeStream::new(edges).unwrap();
        GraphSnapshot::from_stream_prefix(&stream, stream.len())
    }

    #[test]
    fn walks_stay_on_edges() {
        let snap = line_graph(10);
        let config = WalkConfig { walks_per_node: 2, walk_length: 8, ..Default::default() };
        for walk in generate_walks(&snap, &config, 1) {
            for w in walk.windows(2) {
                assert!(snap.weight(w[0], w[1]) > 0.0, "walk used a non-edge {w:?}");
            }
        }
    }

    #[test]
    fn walk_counts_and_lengths() {
        let snap = line_graph(6);
        let config = WalkConfig { walks_per_node: 3, walk_length: 5, ..Default::default() };
        let walks = generate_walks(&snap, &config, 0);
        assert_eq!(walks.len(), 3 * 6);
        assert!(walks.iter().all(|w| w.len() == 5)); // line graph never dead-ends
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let snap = line_graph(8);
        let mut c1 = WalkConfig { walks_per_node: 2, walk_length: 6, ..Default::default() };
        c1.threads = 1;
        let mut c4 = c1;
        c4.threads = 4;
        assert_eq!(generate_walks(&snap, &c1, 7), generate_walks(&snap, &c4, 7));
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // On a line graph interior, with huge p the walk almost never returns.
        let snap = line_graph(30);
        let config =
            WalkConfig { walks_per_node: 4, walk_length: 10, p: 1e6, q: 1.0, threads: 2 };
        let walks = generate_walks(&snap, &config, 3);
        let mut backtracks = 0usize;
        let mut steps = 0usize;
        for w in &walks {
            for t in 2..w.len() {
                steps += 1;
                if w[t] == w[t - 2] {
                    backtracks += 1;
                }
            }
        }
        // Interior line-graph nodes have 2 neighbors: previous and next; with
        // p huge, next is chosen ~always except at the ends.
        assert!((backtracks as f64) < 0.25 * steps as f64, "{backtracks}/{steps}");
    }

    #[test]
    fn isolated_start_yields_singleton_walk() {
        // Node 5 exists in id space but has no edges.
        let stream = EdgeStream::new(vec![TemporalEdge::plain(0, 1, 0.0)]).unwrap();
        let mut stream_edges = stream.edges().to_vec();
        stream_edges.push(TemporalEdge::plain(6, 7, 1.0));
        let stream = EdgeStream::new(stream_edges).unwrap();
        let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
        // Active nodes exclude isolated ids, so all walks have length >= 1
        // and only start from active nodes.
        let walks = generate_walks(
            &snap,
            &WalkConfig { walks_per_node: 1, walk_length: 4, ..Default::default() },
            0,
        );
        assert_eq!(walks.len(), 4); // nodes 0, 1, 6, 7
        assert!(walks.iter().all(|w| !w.is_empty()));
    }
}
