//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! Used for negative sampling in skip-gram training (unigram^0.75
//! distribution) and for first-order steps of the random walks.

use rand::{Rng, RngExt};

/// A pre-processed discrete distribution supporting O(1) sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights; at least one weight must
    /// be positive.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with positive sum"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w as f64 * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index distributed proportionally to the input weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_expected_frequencies() {
        let table = AliasTable::new(&[1.0, 3.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let expected = [0.1, 0.3, 0.6];
        for (c, e) in counts.iter().zip(expected) {
            let f = *c as f64 / n as f64;
            assert!((f - e).abs() < 0.02, "freq {f} expected {e}");
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
