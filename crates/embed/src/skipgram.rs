//! Skip-gram with negative sampling (SGNS), the word2vec objective applied
//! to random-walk corpora (DeepWalk / node2vec).

use ctdg::NodeId;
use nn::{sigmoid, Matrix};
use rand::{rngs::StdRng, SeedableRng};

use crate::alias::AliasTable;

/// SGNS hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SkipGramConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to 1e-4 of itself.
    pub lr: f32,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self { dim: 32, window: 4, negatives: 4, epochs: 2, lr: 0.025 }
    }
}

/// Trains SGNS embeddings over a walk corpus.
///
/// `num_nodes` sizes the embedding table (dense id space); `noise_weights`
/// gives the negative-sampling distribution (typically degree^0.75, zero for
/// inactive nodes). Returns the input-embedding matrix `(num_nodes, dim)`
/// with rows L2-normalized; nodes never visited keep zero rows.
pub fn train_skipgram(
    walks: &[Vec<NodeId>],
    num_nodes: usize,
    noise_weights: &[f32],
    config: &SkipGramConfig,
    seed: u64,
) -> Matrix {
    assert_eq!(noise_weights.len(), num_nodes, "noise weights must cover all nodes");
    let dim = config.dim;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut in_emb = nn::randn_matrix(num_nodes, dim, 0.5 / dim as f32, &mut rng);
    let mut out_emb = Matrix::zeros(num_nodes, dim);
    if walks.is_empty() || num_nodes == 0 {
        return Matrix::zeros(num_nodes, dim);
    }
    let noise = AliasTable::new(noise_weights);

    let total_pairs_estimate: usize = walks.iter().map(|w| w.len() * 2 * config.window).sum();
    let total_steps = (total_pairs_estimate * config.epochs).max(1);
    let mut step_count = 0usize;

    let mut grad_center = vec![0.0f32; dim];
    for _epoch in 0..config.epochs {
        for walk in walks {
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(config.window);
                let hi = (i + config.window + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let lr = config.lr
                        * (1.0 - step_count as f32 / total_steps as f32).max(1e-4);
                    step_count += 1;
                    grad_center.iter_mut().for_each(|g| *g = 0.0);
                    // positive pair
                    sgns_pair(
                        &mut in_emb,
                        &mut out_emb,
                        center as usize,
                        context as usize,
                        1.0,
                        lr,
                        &mut grad_center,
                    );
                    // negatives
                    for _ in 0..config.negatives {
                        let neg = noise.sample(&mut rng);
                        if neg == context as usize {
                            continue;
                        }
                        sgns_pair(
                            &mut in_emb,
                            &mut out_emb,
                            center as usize,
                            neg,
                            0.0,
                            lr,
                            &mut grad_center,
                        );
                    }
                    // apply accumulated center gradient
                    let c_row = in_emb.row_mut(center as usize);
                    for (v, g) in c_row.iter_mut().zip(&grad_center) {
                        *v -= lr * g;
                    }
                }
            }
        }
    }

    // Zero never-visited rows and L2-normalize the rest.
    let mut visited = vec![false; num_nodes];
    for walk in walks {
        for &v in walk {
            visited[v as usize] = true;
        }
    }
    for (i, &was_visited) in visited.iter().enumerate().take(num_nodes) {
        let row = in_emb.row_mut(i);
        if !was_visited {
            row.iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 1e-8 {
            row.iter_mut().for_each(|v| *v /= norm);
        }
    }
    in_emb
}

/// One SGNS update for a (center, other) pair with label `y ∈ {0, 1}`.
/// The output-side embedding is updated immediately; the center gradient is
/// accumulated into `grad_center` (applied once per positive + negatives
/// group, the standard word2vec scheme).
fn sgns_pair(
    in_emb: &mut Matrix,
    out_emb: &mut Matrix,
    center: usize,
    other: usize,
    y: f32,
    lr: f32,
    grad_center: &mut [f32],
) {
    let dim = grad_center.len();
    let mut dot = 0.0f32;
    {
        let c = in_emb.row(center);
        let o = out_emb.row(other);
        for k in 0..dim {
            dot += c[k] * o[k];
        }
    }
    let g = sigmoid(dot) - y;
    // accumulate center grad, update output row
    let c_snapshot: Vec<f32> = in_emb.row(center).to_vec();
    {
        let o = out_emb.row(other);
        for k in 0..dim {
            grad_center[k] += g * o[k];
        }
    }
    let o = out_emb.row_mut(other);
    for k in 0..dim {
        o[k] -= lr * g * c_snapshot[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na < 1e-8 || nb < 1e-8 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Two disjoint "communities" of nodes that only co-occur within their
    /// own walks must embed closer within than across.
    #[test]
    fn separates_cooccurrence_communities() {
        let walks: Vec<Vec<NodeId>> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 2, 1, 0, 1]
                } else {
                    vec![3, 4, 5, 3, 5, 4, 3, 4]
                }
            })
            .collect();
        let noise = vec![1.0f32; 6];
        let config = SkipGramConfig { dim: 16, window: 3, negatives: 4, epochs: 8, lr: 0.05 };
        let emb = train_skipgram(&walks, 6, &noise, &config, 42);
        let within = cosine(emb.row(0), emb.row(1));
        let across = cosine(emb.row(0), emb.row(4));
        assert!(
            within > across + 0.2,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn unvisited_nodes_have_zero_rows() {
        let walks = vec![vec![0u32, 1, 0, 1]];
        let noise = vec![1.0f32; 4];
        let emb = train_skipgram(&walks, 4, &noise, &SkipGramConfig::default(), 0);
        assert!(emb.row(2).iter().all(|&v| v == 0.0));
        assert!(emb.row(3).iter().all(|&v| v == 0.0));
        assert!(emb.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn rows_are_unit_norm() {
        let walks = vec![vec![0u32, 1, 2, 0, 1, 2]; 10];
        let noise = vec![1.0f32; 3];
        let emb = train_skipgram(&walks, 3, &noise, &SkipGramConfig::default(), 1);
        for i in 0..3 {
            let n: f32 = emb.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm {n}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let walks = vec![vec![0u32, 1, 2, 1, 0]; 5];
        let noise = vec![1.0f32; 3];
        let c = SkipGramConfig::default();
        let a = train_skipgram(&walks, 3, &noise, &c, 9);
        let b = train_skipgram(&walks, 3, &noise, &c, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_is_all_zero() {
        let emb = train_skipgram(&[], 5, &[1.0; 5], &SkipGramConfig::default(), 0);
        assert!(emb.data().iter().all(|&v| v == 0.0));
    }
}
