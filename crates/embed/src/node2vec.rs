//! End-to-end node2vec: walks → SGNS → positional embedding matrix.
//!
//! This is the positional embedding function `Embedding(G^(s))` of the
//! paper's Eq. (1): applied to the training-prefix snapshot, it produces the
//! positional feature `p_i` for every seen node.

use ctdg::GraphSnapshot;
use nn::Matrix;

use crate::skipgram::{train_skipgram, SkipGramConfig};
use crate::walks::{generate_walks, WalkConfig};

/// Combined node2vec configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Node2VecConfig {
    /// Random-walk parameters.
    pub walk: WalkConfig,
    /// Skip-gram parameters.
    pub sgns: SkipGramConfig,
}

impl Node2VecConfig {
    /// A small, fast configuration suited to training-prefix snapshots of
    /// the scaled-down datasets.
    pub fn fast(dim: usize) -> Self {
        Self {
            walk: WalkConfig { walks_per_node: 6, walk_length: 16, p: 1.0, q: 0.5, threads: 4 },
            sgns: SkipGramConfig { dim, window: 3, negatives: 3, epochs: 2, lr: 0.03 },
        }
    }
}

/// Runs node2vec over `snapshot` and returns `(num_nodes, dim)` embeddings.
/// Isolated nodes get zero rows.
pub fn node2vec(snapshot: &GraphSnapshot, config: &Node2VecConfig, seed: u64) -> Matrix {
    let walks = generate_walks(snapshot, &config.walk, seed);
    let n = snapshot.num_nodes();
    // Negative-sampling distribution: static degree^0.75 over active nodes.
    let noise: Vec<f32> = (0..n as u32)
        .map(|v| (snapshot.static_degree(v) as f32).powf(0.75))
        .collect();
    if noise.iter().all(|&w| w == 0.0) {
        return Matrix::zeros(n, config.sgns.dim);
    }
    train_skipgram(&walks, n, &noise, &config.sgns, seed ^ 0xA5A5_5A5A)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, TemporalEdge};

    /// Two cliques joined by one bridge edge: positional embeddings must
    /// place same-clique nodes closer than cross-clique nodes.
    fn two_cliques() -> GraphSnapshot {
        let mut edges = Vec::new();
        let mut t = 0.0;
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push(TemporalEdge::plain(a, b, t));
                t += 1.0;
            }
        }
        for a in 5..10u32 {
            for b in (a + 1)..10 {
                edges.push(TemporalEdge::plain(a, b, t));
                t += 1.0;
            }
        }
        edges.push(TemporalEdge::plain(4, 5, t));
        let stream = EdgeStream::new(edges).unwrap();
        GraphSnapshot::from_stream_prefix(&stream, stream.len())
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-8)
    }

    #[test]
    fn clusters_by_community() {
        let snap = two_cliques();
        let emb = node2vec(&snap, &Node2VecConfig::fast(16), 13);
        // Average within- vs cross-community cosine similarity.
        let mut within = 0.0f32;
        let mut wn = 0;
        let mut across = 0.0f32;
        let mut an = 0;
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let c = cosine(emb.row(a as usize), emb.row(b as usize));
                if (a < 5) == (b < 5) {
                    within += c;
                    wn += 1;
                } else {
                    across += c;
                    an += 1;
                }
            }
        }
        let within = within / wn as f32;
        let across = across / an as f32;
        assert!(
            within > across + 0.1,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn shapes_and_determinism() {
        let snap = two_cliques();
        let cfg = Node2VecConfig::fast(8);
        let a = node2vec(&snap, &cfg, 5);
        let b = node2vec(&snap, &cfg, 5);
        assert_eq!(a.shape(), (10, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_all_zero() {
        let stream = EdgeStream::new(vec![]).unwrap();
        let snap = GraphSnapshot::from_stream_prefix(&stream, 0);
        let emb = node2vec(&snap, &Node2VecConfig::fast(4), 0);
        assert_eq!(emb.shape(), (0, 4));
    }
}
