//! GraRep-style positional embeddings (Cao, Lu & Xu, CIKM 2015).
//!
//! The SPLASH paper (§II-D) cites GraRep as a positional embedding that
//! captures multi-hop proximity: for each transition step `k = 1..K`, the
//! log of the k-step transition-probability matrix (shifted by the log of
//! the uniform baseline, clipped at zero) is factorized with a truncated
//! SVD, and the per-step embeddings `U_k · diag(S_k)^{1/2}` are
//! concatenated. Together with node2vec this gives the `embed` crate two
//! interchangeable implementations of the `Embedding(G^(s))` function of
//! the paper's Eq. (1).
//!
//! Training snapshots in this reproduction have at most a few thousand
//! nodes, so the dense `O(n²)` transition powers are cheap.

use ctdg::{GraphSnapshot, NodeId};
use nn::{truncated_svd, Matrix};

/// Configuration for [`grarep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraRepConfig {
    /// Total embedding dimension (split evenly across transition steps).
    pub dim: usize,
    /// Maximum transition step `K` (GraRep's order).
    pub transition_steps: usize,
    /// Power iterations inside each truncated SVD.
    pub svd_iters: usize,
}

impl Default for GraRepConfig {
    fn default() -> Self {
        Self { dim: 32, transition_steps: 2, svd_iters: 3 }
    }
}

/// Computes GraRep embeddings `(num_nodes, dim)` over the snapshot's
/// Ω-weighted undirected adjacency. Isolated nodes get zero rows.
pub fn grarep(snapshot: &GraphSnapshot, config: &GraRepConfig, seed: u64) -> Matrix {
    let n = snapshot.num_nodes();
    let steps = config.transition_steps.max(1);
    if n == 0 || config.dim == 0 {
        return Matrix::zeros(n, config.dim);
    }
    let per_step = (config.dim / steps).max(1);

    // Row-normalized transition matrix over Ω weights.
    let mut transition = Matrix::zeros(n, n);
    for v in 0..n as NodeId {
        let nbrs = snapshot.neighbors(v);
        let total: f32 = nbrs.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            continue;
        }
        for &(u, w) in nbrs {
            transition.set(v as usize, u as usize, w / total);
        }
    }

    let log_uniform = (1.0 / n as f32).ln();
    let mut power = transition.clone();
    let mut blocks: Vec<Matrix> = Vec::with_capacity(steps);
    for step in 0..steps {
        if step > 0 {
            power = power.matmul(&transition);
        }
        // Positive log co-occurrence: log p_k(u|v) − log (1/n), clipped.
        let target = power.map(|p| if p > 0.0 { (p.ln() - log_uniform).max(0.0) } else { 0.0 });
        let svd = truncated_svd(&target, per_step, config.svd_iters, seed ^ (step as u64 + 1));
        blocks.push(svd.embedding(0.5));
    }
    let refs: Vec<&Matrix> = blocks.iter().collect();
    let concat = Matrix::concat_cols(&refs);
    // Pad or truncate to exactly `dim` columns (the block split may not
    // divide evenly), and zero isolated nodes' rows to match node2vec's
    // convention.
    let mut emb = Matrix::zeros(n, config.dim);
    let copy = concat.cols().min(config.dim);
    for v in 0..n {
        emb.row_mut(v)[..copy].copy_from_slice(&concat.row(v)[..copy]);
    }
    for v in 0..n as NodeId {
        if snapshot.neighbors(v).is_empty() {
            emb.row_mut(v as usize).iter_mut().for_each(|x| *x = 0.0);
        }
    }
    emb
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, TemporalEdge};

    fn two_cliques() -> GraphSnapshot {
        let mut edges = Vec::new();
        let mut t = 0.0;
        for base in [0u32, 5] {
            for a in base..base + 5 {
                for b in (a + 1)..base + 5 {
                    edges.push(TemporalEdge::plain(a, b, t));
                    t += 1.0;
                }
            }
        }
        edges.push(TemporalEdge::plain(4, 5, t)); // bridge
        let stream = EdgeStream::new(edges).unwrap();
        GraphSnapshot::from_stream_prefix(&stream, stream.len())
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-8)
    }

    #[test]
    fn same_clique_nodes_embed_closer() {
        let cfg = GraRepConfig { dim: 8, transition_steps: 2, svd_iters: 4 };
        let emb = grarep(&two_cliques(), &cfg, 7);
        assert_eq!(emb.shape(), (10, 8));
        // Node 1 (clique A, away from the bridge) vs node 2 (same clique)
        // and node 7 (other clique).
        let same = cosine(emb.row(1), emb.row(2));
        let cross = cosine(emb.row(1), emb.row(7));
        assert!(
            same > cross + 0.1,
            "same-clique cosine {same} must exceed cross-clique {cross}"
        );
    }

    #[test]
    fn shape_and_finiteness() {
        let cfg = GraRepConfig { dim: 6, transition_steps: 3, svd_iters: 2 };
        let emb = grarep(&two_cliques(), &cfg, 0);
        assert_eq!(emb.shape(), (10, 6)); // 3 blocks of 2
        assert!(emb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn isolated_nodes_are_zero() {
        let stream = EdgeStream::new(vec![TemporalEdge::plain(0, 1, 0.0)]).unwrap();
        let snap = GraphSnapshot::from_edges(4, stream.edges());
        let emb = grarep(&snap, &GraRepConfig { dim: 4, ..Default::default() }, 1);
        assert!(emb.row(2).iter().all(|&x| x == 0.0));
        assert!(emb.row(3).iter().all(|&x| x == 0.0));
        assert!(emb.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_graph_is_handled() {
        let snap = GraphSnapshot::from_edges(0, &[]);
        let emb = grarep(&snap, &GraRepConfig::default(), 0);
        assert_eq!(emb.shape(), (0, 32));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = GraRepConfig { dim: 8, transition_steps: 2, svd_iters: 3 };
        let a = grarep(&two_cliques(), &cfg, 42);
        let b = grarep(&two_cliques(), &cfg, 42);
        assert_eq!(a.data(), b.data());
    }
}
