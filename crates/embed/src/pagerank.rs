//! Weighted PageRank over a graph snapshot.
//!
//! The SPLASH paper (§II-D) lists PageRank scores among the structural node
//! embeddings that feature augmentation can draw on. This module provides
//! the classic damped power iteration over the snapshot's Ω-weighted
//! undirected adjacency, with dangling mass redistributed uniformly.

use ctdg::{GraphSnapshot, NodeId};

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d` (teleport probability is `1 − d`).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self { damping: 0.85, max_iters: 100, tol: 1e-10 }
    }
}

/// Weighted PageRank scores, one per node slot, summing to 1 (for nonempty
/// graphs). Isolated nodes act as dangling nodes: they receive teleport and
/// redistributed mass but forward everything uniformly.
///
/// ```
/// use ctdg::{EdgeStream, GraphSnapshot, TemporalEdge};
/// use embed::{pagerank, PageRankConfig};
///
/// // A star: node 0 is the hub.
/// let stream = EdgeStream::new(
///     (1..5).map(|i| TemporalEdge::plain(0, i, i as f64)).collect(),
/// ).unwrap();
/// let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
/// let pr = pagerank(&snap, &PageRankConfig::default());
/// assert!(pr[0] > pr[1]);
/// assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(snapshot: &GraphSnapshot, config: &PageRankConfig) -> Vec<f64> {
    let n = snapshot.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    // Per-node total outgoing weight (undirected: the Ω-weighted degree).
    let out_weight: Vec<f64> = (0..n as NodeId)
        .map(|v| snapshot.neighbors(v).iter().map(|&(_, w)| w as f64).sum())
        .collect();

    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iters {
        // Teleport + dangling mass, spread uniformly.
        let dangling: f64 = (0..n).filter(|&v| out_weight[v] <= 0.0).map(|v| rank[v]).sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n {
            if out_weight[v] <= 0.0 {
                continue;
            }
            let share = config.damping * rank[v] / out_weight[v];
            for &(u, w) in snapshot.neighbors(v as NodeId) {
                next[u as usize] += share * w as f64;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, TemporalEdge};

    fn snapshot(edges: Vec<TemporalEdge>) -> GraphSnapshot {
        let stream = EdgeStream::new(edges).unwrap();
        GraphSnapshot::from_stream_prefix(&stream, stream.len())
    }

    #[test]
    fn sums_to_one() {
        let s = snapshot(vec![
            TemporalEdge::plain(0, 1, 0.0),
            TemporalEdge::plain(1, 2, 1.0),
            TemporalEdge::plain(2, 3, 2.0),
        ]);
        let pr = pagerank(&s, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn uniform_on_a_cycle() {
        // A 5-cycle is vertex-transitive: all scores equal.
        let edges = (0..5u32)
            .map(|i| TemporalEdge::plain(i, (i + 1) % 5, i as f64))
            .collect();
        let pr = pagerank(&snapshot(edges), &PageRankConfig::default());
        for &x in &pr {
            assert!((x - 0.2).abs() < 1e-9, "{pr:?}");
        }
    }

    #[test]
    fn star_center_dominates() {
        let edges = (1..6u32).map(|i| TemporalEdge::plain(0, i, i as f64)).collect();
        let pr = pagerank(&snapshot(edges), &PageRankConfig::default());
        for leaf in 1..6 {
            assert!(pr[0] > 2.0 * pr[leaf], "center {} vs leaf {}", pr[0], pr[leaf]);
        }
        // Leaves are symmetric.
        for leaf in 2..6 {
            assert!((pr[leaf] - pr[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn edge_weights_steer_rank() {
        // 0—1 heavy, 0—2 light: node 1 outranks node 2.
        let s = snapshot(vec![
            TemporalEdge::weighted(0, 1, 10.0, 0.0),
            TemporalEdge::weighted(0, 2, 1.0, 1.0),
        ]);
        let pr = pagerank(&s, &PageRankConfig::default());
        assert!(pr[1] > pr[2], "{pr:?}");
    }

    #[test]
    fn isolated_nodes_keep_teleport_mass() {
        // Node 3 never appears in an edge but exists in the id space.
        let stream = EdgeStream::new(vec![TemporalEdge::plain(0, 1, 0.0)]).unwrap();
        let s = GraphSnapshot::from_edges(4, stream.edges());
        let pr = pagerank(&s, &PageRankConfig::default());
        assert_eq!(pr.len(), 4);
        assert!(pr[3] > 0.0, "dangling node must retain mass: {pr:?}");
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_empty() {
        let s = GraphSnapshot::from_edges(0, &[]);
        assert!(pagerank(&s, &PageRankConfig::default()).is_empty());
    }
}
