//! Node embeddings over training-prefix snapshots, built from scratch.
//!
//! The SPLASH paper's positional feature augmentation (Eq. 1) embeds the
//! training-prefix snapshot with node2vec; §II-D also cites GraRep as an
//! alternative positional embedding and PageRank scores as a structural
//! one. This crate provides all three:
//!
//! * **node2vec** — Walker's alias method for O(1) discrete sampling,
//!   biased second-order random walks (parallelized with scoped
//!   threads), and skip-gram training with negative sampling. DeepWalk is
//!   the `p = q = 1` special case of the walk configuration.
//! * **GraRep** — truncated-SVD factorization of log multi-step transition
//!   matrices ([`grarep`](fn@grarep)).
//! * **PageRank** — damped weighted power iteration ([`pagerank`](fn@pagerank)).

pub mod alias;
pub mod grarep;
pub mod node2vec;
pub mod pagerank;
pub mod skipgram;
pub mod walks;

pub use alias::AliasTable;
pub use grarep::{grarep, GraRepConfig};
pub use node2vec::{node2vec, Node2VecConfig};
pub use pagerank::{pagerank, PageRankConfig};
pub use skipgram::{train_skipgram, SkipGramConfig};
pub use walks::{generate_walks, WalkConfig};
