//! Property-based tests for the embedding substrate: alias-method sampling
//! correctness, random-walk validity, and skip-gram output sanity.

use ctdg::{EdgeStream, GraphSnapshot, TemporalEdge};
use embed::{generate_walks, node2vec, AliasTable, Node2VecConfig, WalkConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Builds a snapshot from arbitrary undirected edges.
fn snapshot_from(raw: &[(u32, u32)]) -> GraphSnapshot {
    let edges: Vec<TemporalEdge> = raw
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| TemporalEdge::plain(a, b, i as f64))
        .collect();
    let stream = EdgeStream::new(edges).expect("increasing times");
    GraphSnapshot::from_stream_prefix(&stream, stream.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Alias sampling reproduces the weight distribution: empirical
    /// frequencies converge to the normalized weights (loose 5σ binomial
    /// bound per bucket).
    #[test]
    fn alias_sampling_matches_weights(
        weights in prop::collection::vec(0.0f32..10.0, 1..8)
    ) {
        prop_assume!(weights.iter().sum::<f32>() > 0.1);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 20_000usize;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let p = (w / total) as f64;
            let expected = p * draws as f64;
            let sigma = (draws as f64 * p * (1.0 - p)).sqrt();
            prop_assert!(
                (counts[i] as f64 - expected).abs() <= 5.0 * sigma + 1.0,
                "bucket {i}: {} draws, expected {expected:.1} ± {sigma:.1}",
                counts[i]
            );
        }
    }

    /// Zero-weight buckets are never sampled.
    #[test]
    fn alias_never_samples_zero_weight(mask in prop::collection::vec(any::<bool>(), 2..8)) {
        prop_assume!(mask.iter().any(|&m| m));
        let weights: Vec<f32> = mask.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect();
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let s = table.sample(&mut rng);
            prop_assert!(mask[s], "sampled zero-weight bucket {s}");
        }
    }

    /// Every consecutive pair in a generated walk is an edge of the
    /// snapshot, and every walk starts at an active node.
    #[test]
    fn walks_follow_edges(
        raw in prop::collection::vec((0u32..12, 0u32..12), 1..40),
        p in 0.3f32..3.0,
        q in 0.3f32..3.0,
    ) {
        let snap = snapshot_from(&raw);
        let config = WalkConfig { walks_per_node: 2, walk_length: 8, p, q, threads: 2 };
        for walk in generate_walks(&snap, &config, 5) {
            prop_assert!(!walk.is_empty());
            prop_assert!(!snap.neighbors(walk[0]).is_empty(), "walk starts at isolated node");
            for pair in walk.windows(2) {
                prop_assert!(
                    snap.weight(pair[0], pair[1]) > 0.0,
                    "walk step {} → {} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    /// Walk generation is deterministic in the seed and covers every
    /// active node as a start.
    #[test]
    fn walks_are_seeded_and_cover_active_nodes(
        raw in prop::collection::vec((0u32..10, 0u32..10), 1..30)
    ) {
        let snap = snapshot_from(&raw);
        let config = WalkConfig { walks_per_node: 3, walk_length: 5, p: 1.0, q: 1.0, threads: 2 };
        let a = generate_walks(&snap, &config, 11);
        let b = generate_walks(&snap, &config, 11);
        prop_assert_eq!(&a, &b, "same seed must give same walks");
        let active = snap.active_nodes();
        prop_assert_eq!(a.len(), active.len() * config.walks_per_node);
        for v in active {
            prop_assert!(
                a.iter().filter(|w| w[0] == v).count() >= config.walks_per_node,
                "node {v} missing walk starts"
            );
        }
    }

    /// node2vec embeddings: finite everywhere, zero rows exactly for
    /// isolated nodes, requested dimension.
    #[test]
    fn node2vec_output_contract(
        raw in prop::collection::vec((0u32..10, 0u32..10), 1..30),
        dim in 2usize..10,
    ) {
        let snap = snapshot_from(&raw);
        let mut cfg = Node2VecConfig::fast(dim);
        cfg.walk.walks_per_node = 2;
        cfg.walk.walk_length = 6;
        cfg.sgns.epochs = 1;
        let emb = node2vec(&snap, &cfg, 3);
        prop_assert_eq!(emb.shape(), (snap.num_nodes(), dim));
        prop_assert!(emb.data().iter().all(|v| v.is_finite()));
        for v in 0..snap.num_nodes() as u32 {
            if snap.neighbors(v).is_empty() {
                prop_assert!(
                    emb.row(v as usize).iter().all(|&x| x == 0.0),
                    "isolated node {v} must embed to zero"
                );
            }
        }
    }
}
