//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::TestRng;

/// Acceptable length specifications for [`vec`]: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, size)` — a vector of values from `element`, with a length
/// drawn uniformly from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
