//! The [`Strategy`] trait and the primitive strategies built on it.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{RngExt, StandardSample};

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// draws one concrete value from the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// A dependent strategy: generates a value, builds a second strategy
    /// from it, and draws from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing (bounded) otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of a fixed list of values; see [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

/// `sample::select(values)` — uniform choice from a non-empty list, used to
/// pin test shapes to interesting boundary values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select needs at least one value");
    Select(values)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.random_range(0..self.0.len())].clone()
    }
}

/// Strategy for `T`'s full standard distribution; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the standard distribution over all of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T: StandardSample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
