//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the surface the workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the [`proptest!`] macro
//! (including `#![proptest_config(...)]`), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the failure message and the case index so it can be replayed (the
//! sampler is seeded deterministically from the test's name). That trade
//! keeps the shim small while preserving the tests' bug-finding power.

use rand::rngs::StdRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Any, Just, Strategy};

/// Namespaced re-exports mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;

    /// Mirrors `proptest::sample`: strategies drawing from fixed lists.
    pub mod sample {
        pub use crate::strategy::{select, Select};
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// How many passing cases a property must accumulate.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required before the test passes.
        pub cases: usize,
    }

    impl Config {
        /// A config running `cases` successful cases per property.
        pub fn with_cases(cases: usize) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// The deterministic generator driving strategy sampling.
pub type TestRng = StdRng;

// Re-exported for the `proptest!` macro expansion: call sites depend on
// this crate but not necessarily on `rand`, so macro paths must stay
// `$crate`-anchored.
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
}

/// Everything a property-test module needs, in one glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::any;

/// Seeds the per-test RNG from the test's name so runs are reproducible
/// yet distinct across tests. (FNV-1a over the name bytes.)
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                $crate::__seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut passed = 0usize;
            let mut rejected = 0usize;
            let mut case = 0usize;
            while passed < cfg.cases {
                case += 1;
                assert!(
                    rejected <= cfg.cases * 16 + 256,
                    "proptest {}: too many prop_assume! rejections ({rejected})",
                    stringify!($name),
                );
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} falsified at case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` for property bodies: fails the case instead of panicking, so
/// the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        // A `match` keeps the operand temporaries alive through the
        // comparison (the same trick std's `assert_eq!` uses).
        match (&$a, &$b) {
            (lhs, rhs) => {
                if !(*lhs == *rhs) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        lhs,
                        rhs
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if !(*lhs == *rhs) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if *lhs == *rhs {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        lhs
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (drawing a replacement) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
