//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — on top of a
//! plain wall-clock sampler: after a short warm-up, each benchmark runs
//! `sample_size` samples and reports min / mean / max time per iteration on
//! stdout. There are no statistics beyond that and no HTML reports; the
//! numbers are for relative comparison between code paths in this repo.

use std::fmt;
use std::time::{Duration, Instant};

/// Formats a duration compactly (ns / µs / ms / s) for the report table.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Runs one closure repeatedly and measures per-iteration wall time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: warm-up, then `sample_size` measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, stopping after ~20 ms, so first-touch
        // effects (page faults, lazy allocs) stay out of the samples.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() > Duration::from_millis(20) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// The benchmark harness: collects and reports samples.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&name.to_string(), &b.samples);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b.samples);
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; nothing to parse.
            $( $group(); )+
        }
    };
}
