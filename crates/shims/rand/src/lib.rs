//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate provides the exact API surface the reproduction uses — nothing
//! more. The generator behind [`rngs::StdRng`] is xoshiro256\*\* seeded via
//! SplitMix64: deterministic for a given seed on every platform, which the
//! test suite relies on (training runs are reproduced bit-for-bit from
//! config seeds).
//!
//! Provided surface:
//!
//! - [`Rng`] — the core generator trait (`next_u32` / `next_u64` / `fill`);
//! - [`RngExt`] — blanket extension with `random::<T>()`, `random_range`,
//!   and `random_bool` (the rand 0.9 naming);
//! - [`SeedableRng`] — `seed_from_u64` construction;
//! - [`rngs::StdRng`] — the standard deterministic generator.

use std::ops::{Range, RangeInclusive};

/// Deterministic generators.
pub mod rngs {
    /// The standard generator: xoshiro256\*\* (Blackman & Vigna), seeded by
    /// expanding a `u64` through SplitMix64. Fast, 256-bit state, and good
    /// enough statistical quality for feature augmentation and shuffling.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_u64(seed)
        }
    }
}

/// A source of random bits.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full bit stream
/// (`rng.random::<T>()`). Floats are uniform in `[0, 1)`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample (`rng.random_range(a..b)`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire's multiply-shift: unbiased enough for test workloads
                // and, crucially, deterministic across platforms.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A value of `T` from its standard distribution (floats: `[0, 1)`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random::<f32>();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random::<f64>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
