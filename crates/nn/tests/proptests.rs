//! Property-based tests for the neural-network substrate.

use nn::{log_softmax, softmax, softmax_cross_entropy, Activation, Matrix};
use proptest::prelude::*;

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(5, 4), b in arb_matrix(4, 6)) {
        // Only shapes (m,4)·(4,p) are valid; regenerate b with matching rows.
        let b = Matrix::from_fn(a.cols(), b.cols(), |i, j| b.get(i % b.rows(), j));
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(4, 3),
        b in arb_matrix(3, 5),
        c in arb_matrix(3, 5),
    ) {
        let b = Matrix::from_fn(a.cols(), 5, |i, j| b.get(i % b.rows(), j % b.cols()));
        let c = Matrix::from_fn(a.cols(), 5, |i, j| c.get(i % c.rows(), j % c.cols()));
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn softmax_is_a_distribution(m in arb_matrix(6, 8)) {
        let p = softmax(&m);
        for i in 0..p.rows() {
            let s: f32 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_shift_invariance(m in arb_matrix(4, 5), shift in -50.0f32..50.0) {
        let shifted = m.map(|v| v + shift);
        let p1 = softmax(&m);
        let p2 = softmax(&shifted);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax(m in arb_matrix(4, 6)) {
        let lp = log_softmax(&m);
        let p = softmax(&m);
        for (l, q) in lp.data().iter().zip(p.data()) {
            prop_assert!((l.exp() - q).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grad_sums_to_zero(
        m in arb_matrix(5, 4),
        targets in prop::collection::vec(0usize..4, 5),
    ) {
        let targets: Vec<usize> =
            targets[..m.rows()].iter().map(|&t| t % m.cols()).collect();
        let (loss, grad) = softmax_cross_entropy(&m, &targets);
        prop_assert!(loss >= 0.0);
        // Each gradient row sums to zero: (softmax − onehot) / B.
        for i in 0..grad.rows() {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn relu_is_idempotent(m in arb_matrix(4, 4)) {
        let once = Activation::Relu.infer(&m);
        let twice = Activation::Relu.infer(&once);
        prop_assert_eq!(once, twice);
    }

    /// Every backend must produce the same bits for all three products —
    /// the determinism contract the parallel path is built on. Shapes are
    /// drawn freely (including degenerate 1×1) and values include exact
    /// zeros, which exercise both the kernels' zero-skip branches and the
    /// register microkernels' fused-vs-fallback dispatch (a zero inside a
    /// `k` quad forces the scalar path mid-row).
    #[test]
    fn backends_agree_bitwise(
        a in arb_matrix(40, 24),
        b in arb_matrix(24, 32),
        zero_mask in prop::collection::vec(any::<bool>(), 40 * 24),
    ) {
        use nn::{Backend, BlockedBackend, NaiveBackend};
        // Respect matmul's shape contract: regenerate b with matching rows.
        let b = Matrix::from_fn(a.cols(), b.cols(), |i, j| b.get(i % b.rows(), j));
        // Sprinkle exact zeros into a to hit the sparse skip paths.
        let a = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            if zero_mask[(i * a.cols() + j) % zero_mask.len()] { 0.0 } else { a.get(i, j) }
        });
        let reference = NaiveBackend.matmul(&a, &b);
        prop_assert_eq!(reference.data(), BlockedBackend.matmul(&a, &b).data());
        let tn_ref = NaiveBackend.matmul_tn(&b, &b);
        prop_assert_eq!(tn_ref.data(), BlockedBackend.matmul_tn(&b, &b).data());
        let nt_ref = NaiveBackend.matmul_nt(&a, &a);
        prop_assert_eq!(nt_ref.data(), BlockedBackend.matmul_nt(&a, &a).data());
        #[cfg(feature = "parallel")]
        {
            // These shapes sit below the parallel threshold, so this pins
            // ParallelBackend's serial dispatch arm; the actual threaded
            // chunking is pinned by backend::tests
            // (forced_thread_counts_match_serial_bitwise) and the
            // NN_THREADS=4 leg of ci/check.sh.
            use nn::ParallelBackend;
            prop_assert_eq!(reference.data(), ParallelBackend.matmul(&a, &b).data());
            prop_assert_eq!(tn_ref.data(), ParallelBackend.matmul_tn(&b, &b).data());
            prop_assert_eq!(nt_ref.data(), ParallelBackend.matmul_nt(&a, &a).data());
        }
        // And the default backend (whatever the feature set) matches too.
        prop_assert_eq!(reference.data(), a.matmul(&b).data());
    }

    /// Register-tiled microkernel edge shapes: dimensions are drawn around
    /// the tile/unroll boundaries (1, tile−1, tile, tile+1, …), covering
    /// non-multiple-of-tile rows/cols, tall/skinny and 1×n outputs, plus
    /// the `_into` forms writing over dirty caller buffers.
    #[test]
    fn backends_agree_bitwise_on_tile_edges(
        m in prop::sample::select(vec![1usize, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 65]),
        n in prop::sample::select(vec![1usize, 3, 4, 5, 8, 9, 255, 256, 257]),
        p in prop::sample::select(vec![1usize, 2, 3, 4, 5, 7, 9, 33]),
        seed_vals in prop::collection::vec(-10.0f32..10.0, 64),
        zero_mask in prop::collection::vec(any::<bool>(), 64),
    ) {
        use nn::{Backend, BlockedBackend, NaiveBackend};
        let fill = |r: usize, c: usize, off: usize| {
            Matrix::from_fn(r, c, |i, j| {
                let idx = (i * c + j + off) % seed_vals.len();
                if zero_mask[idx] { 0.0 } else { seed_vals[idx] }
            })
        };
        let a = fill(m, n, 0);
        let b = fill(n, p, 17);
        let c = fill(m, p, 29);
        let bt = fill(p, n, 41);

        let nn_ref = NaiveBackend.matmul(&a, &b);
        prop_assert_eq!(nn_ref.data(), BlockedBackend.matmul(&a, &b).data());
        let tn_ref = NaiveBackend.matmul_tn(&a, &c);
        prop_assert_eq!(tn_ref.data(), BlockedBackend.matmul_tn(&a, &c).data());
        let nt_ref = NaiveBackend.matmul_nt(&a, &bt);
        prop_assert_eq!(nt_ref.data(), BlockedBackend.matmul_nt(&a, &bt).data());

        // The workspace-oriented `_into` entry points must resize dirty
        // buffers and produce the same bits as the allocating calls.
        let mut out = Matrix::filled(3, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(nn_ref.data(), out.data());
        a.matmul_tn_into(&c, &mut out);
        prop_assert_eq!(tn_ref.data(), out.data());
        a.matmul_nt_into(&bt, &mut out);
        prop_assert_eq!(nt_ref.data(), out.data());

        #[cfg(feature = "parallel")]
        {
            use nn::ParallelBackend;
            prop_assert_eq!(nn_ref.data(), ParallelBackend.matmul(&a, &b).data());
            prop_assert_eq!(tn_ref.data(), ParallelBackend.matmul_tn(&a, &c).data());
            prop_assert_eq!(nt_ref.data(), ParallelBackend.matmul_nt(&a, &bt).data());
        }
    }

    /// LN(s·x) = LN(x) holds exactly only for ε = 0; with the stabilizing
    /// ε the property degrades when the scaled row variance approaches ε,
    /// so near-constant rows are skipped — the invariance claim is about
    /// well-conditioned inputs.
    #[test]
    fn layer_norm_output_is_scale_invariant(m in arb_matrix(3, 8), s in 0.1f32..20.0) {
        let ln = nn::LayerNorm::new(m.cols());
        let a = ln.infer(&m);
        let b = ln.infer(&m.scale(s));
        for i in 0..m.rows() {
            let row = m.row(i);
            let mean = row.iter().sum::<f32>() / row.len() as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
                / row.len() as f32;
            if var * s.min(1.0) * s.min(1.0) < 1e-3 {
                continue;
            }
            for (x, y) in a.row(i).iter().zip(b.row(i)) {
                prop_assert!((x - y).abs() < 2e-2, "{x} vs {y}");
            }
        }
    }
}
