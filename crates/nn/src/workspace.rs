//! Reusable scratch buffers for allocation-free hot loops.
//!
//! Training steps and streaming-inference queries need a handful of
//! intermediate matrices per call (layer outputs, gradient temporaries,
//! packed batches). Allocating them fresh each time puts the allocator on
//! the critical path; a [`Workspace`] instead owns a pool of [`Matrix`]
//! buffers that callers check out, use, and return.
//!
//! # Ownership protocol
//!
//! * [`Workspace::take`] hands out an *owned*, zeroed matrix of the
//!   requested shape, reusing a pooled buffer's heap allocation when one
//!   with enough capacity exists (best-fit; otherwise the largest pooled
//!   buffer is grown, and only an empty pool allocates from scratch).
//! * [`Workspace::give`] returns a buffer to the pool, keeping its
//!   capacity for the next `take`.
//!
//! After a warm-up pass with the loop's steady shapes, every `take` is
//! satisfied from the pool and the loop performs **zero heap
//! allocations** — the property the `alloc_free_streaming_predict` test in
//! `splash` pins. Buffers that are never given back simply migrate out of
//! the pool; the workspace never frees capacity behind the caller's back.

use crate::matrix::Matrix;

/// A pool of reusable [`Matrix`] buffers (see the module docs for the
/// take/give protocol).
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pool: Vec<Matrix>,
}

impl Workspace {
    /// An empty workspace; buffers are created lazily by the first passes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Checks out a zeroed `rows × cols` matrix.
    ///
    /// Best-fit reuse: the pooled buffer with the smallest sufficient
    /// capacity is used as-is; if none fits, the largest pooled buffer is
    /// grown (one allocation, amortized away by reuse); an empty pool
    /// allocates fresh. Return the buffer with [`Workspace::give`] when
    /// done so later takes can reuse it.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let mut best: Option<(usize, usize)> = None;
        let mut largest: Option<(usize, usize)> = None;
        for (i, m) in self.pool.iter().enumerate() {
            let cap = m.capacity();
            if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
            if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((i, cap));
            }
        }
        let mut m = match best.or(largest) {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Matrix::default(),
        };
        m.resize_zeroed(rows, cols);
        m
    }

    /// Returns a buffer to the pool, preserving its capacity for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_shaped() {
        let mut ws = Workspace::new();
        let mut m = ws.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.data().iter().all(|&v| v == 0.0));
        m.data_mut()[5] = 7.0;
        ws.give(m);
        // The dirtied buffer comes back clean.
        let m = ws.take(3, 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuse_preserves_capacity() {
        let mut ws = Workspace::new();
        let m = ws.take(10, 10);
        let ptr_cap = m.capacity();
        ws.give(m);
        // Smaller request reuses the same buffer without shrinking it.
        let m = ws.take(2, 2);
        assert!(m.capacity() >= ptr_cap);
        ws.give(m);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(100, 100);
        let small = ws.take(2, 2);
        ws.give(big);
        ws.give(small);
        // A tiny request must not burn the big buffer.
        let m = ws.take(1, 2);
        assert!(m.capacity() < 100 * 100);
        ws.give(m);
    }
}
