//! Multi-layer perceptron: a stack of [`Linear`] layers with a hidden
//! activation and a linear (identity) output layer.

use rand::Rng;

use crate::activation::{ActCache, Activation};
use crate::linear::{Linear, LinearCache};
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};
use crate::workspace::Workspace;

/// An MLP `in → hidden → … → out` with `activation` after every layer except
/// the last.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Backward cache for [`Mlp`].
///
/// `Default` yields an empty cache that [`Mlp::forward_into`] sizes on
/// first use and reuses afterwards — carry one across training steps for
/// allocation-free forward passes.
#[derive(Debug, Default)]
pub struct MlpCache {
    linear: Vec<LinearCache>,
    act: Vec<ActCache>,
}

impl Mlp {
    /// Builds an MLP from the full dimension sequence, e.g. `[16, 64, 8]`
    /// gives one hidden layer of width 64. `dims.len() >= 2`.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// Number of affine layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass `(B, in) → (B, out)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache::default();
        let mut out = Matrix::default();
        self.forward_into(x, &mut out, &mut cache, &mut Workspace::new());
        (out, cache)
    }

    /// [`Mlp::forward`] into a caller-owned output, reusing `cache` and
    /// drawing layer intermediates from `ws`. Allocation-free once the
    /// buffers have warmed up to the batch shape; bit-identical to
    /// [`Mlp::forward`].
    pub fn forward_into(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        cache: &mut MlpCache,
        ws: &mut Workspace,
    ) {
        let last = self.layers.len() - 1;
        cache.linear.resize_with(self.layers.len(), Default::default);
        cache.act.resize_with(last, Default::default);
        let mut h = ws.take(0, 0);
        let mut next = ws.take(0, 0);
        for (i, layer) in self.layers.iter().enumerate() {
            let input = if i == 0 { x } else { &h };
            let dst = if i == last { &mut *out } else { &mut next };
            layer.forward_into(input, dst, &mut cache.linear[i]);
            if i < last {
                self.activation.forward_inplace(&mut next, &mut cache.act[i]);
                std::mem::swap(&mut h, &mut next);
            }
        }
        ws.give(h);
        ws.give(next);
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(x, &mut out, &mut Workspace::new());
        out
    }

    /// [`Mlp::infer`] into a caller-owned output, drawing intermediates
    /// from `ws` (allocation-free after warm-up, bit-identical results).
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
        let last = self.layers.len() - 1;
        let mut h = ws.take(0, 0);
        let mut next = ws.take(0, 0);
        for (i, layer) in self.layers.iter().enumerate() {
            let input = if i == 0 { x } else { &h };
            let dst = if i == last { &mut *out } else { &mut next };
            layer.infer_into(input, dst);
            if i < last {
                self.activation.infer_inplace(&mut next);
                std::mem::swap(&mut h, &mut next);
            }
        }
        ws.give(h);
        ws.give(next);
    }

    /// Backward pass: accumulates parameter gradients, returns `dx`.
    pub fn backward(&mut self, cache: &MlpCache, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(cache, dy, &mut dx, &mut Workspace::new());
        dx
    }

    /// [`Mlp::backward`] into a caller-owned `dx`, drawing gradient
    /// temporaries from `ws` (allocation-free after warm-up, bit-identical
    /// to [`Mlp::backward`]).
    pub fn backward_into(
        &mut self,
        cache: &MlpCache,
        dy: &Matrix,
        dx: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let last = self.layers.len() - 1;
        let mut grad = ws.take(0, 0);
        grad.copy_from(dy);
        let mut next = ws.take(0, 0);
        for i in (0..self.layers.len()).rev() {
            if i < last {
                self.activation.backward_inplace(&cache.act[i], &mut grad);
            }
            let dst = if i == 0 { &mut *dx } else { &mut next };
            self.layers[i].backward_into(&cache.linear[i], &grad, dst, ws);
            if i > 0 {
                std::mem::swap(&mut grad, &mut next);
            }
        }
        ws.give(grad);
        ws.give(next);
    }
}

impl Mlp {
    /// Overwrites every layer's *values* with `other`'s (same architecture
    /// required; gradients and optimizer moments untouched), reusing the
    /// existing buffers — allocation-free. See [`Linear::copy_weights_from`].
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len(), "MLP depth mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.copy_weights_from(src);
        }
    }
}

impl Parameterized for Mlp {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::loss::softmax_cross_entropy;
    use crate::param::Adam;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[6, 16, 16, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.num_layers(), 3);
        let x = randn_matrix(5, 6, 1.0, &mut rng);
        let (y, _) = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(mlp.infer(&x), y);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        // Tanh avoids the ReLU kink issue in finite differences.
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng);
        let x = randn_matrix(3, 4, 1.0, &mut rng);
        grad_check(
            mlp,
            x,
            |m, x| m.forward(x),
            |m, c, dy| m.backward(c, dy),
            3e-2,
        );
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[2, 16, 2], Activation::Relu, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let (logits, cache) = mlp.forward(&x);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
            final_loss = loss;
            mlp.backward(&cache, &dlogits);
            opt.step(mlp.params_mut());
        }
        assert!(final_loss < 0.05, "XOR loss stayed at {final_loss}");
        let logits = mlp.infer(&x);
        for (i, &t) in targets.iter().enumerate() {
            let row = logits.row(i);
            let pred = if row[1] > row[0] { 1 } else { 0 };
            assert_eq!(pred, t, "sample {i}");
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        assert_eq!(Parameterized::num_params(&mlp), (3 * 5 + 5) + (5 * 2 + 2));
    }
}
