//! Multi-layer perceptron: a stack of [`Linear`] layers with a hidden
//! activation and a linear (identity) output layer.

use rand::Rng;

use crate::activation::{ActCache, Activation};
use crate::linear::{Linear, LinearCache};
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

/// An MLP `in → hidden → … → out` with `activation` after every layer except
/// the last.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Backward cache for [`Mlp`].
#[derive(Debug)]
pub struct MlpCache {
    linear: Vec<LinearCache>,
    act: Vec<ActCache>,
}

impl Mlp {
    /// Builds an MLP from the full dimension sequence, e.g. `[16, 64, 8]`
    /// gives one hidden layer of width 64. `dims.len() >= 2`.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// Number of affine layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass `(B, in) → (B, out)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache { linear: Vec::new(), act: Vec::new() };
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (y, lc) = layer.forward(&h);
            cache.linear.push(lc);
            if i < last {
                let (a, ac) = self.activation.forward(&y);
                cache.act.push(ac);
                h = a;
            } else {
                h = y;
            }
        }
        (h, cache)
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(&h);
            if i < last {
                h = self.activation.infer(&h);
            }
        }
        h
    }

    /// Backward pass: accumulates parameter gradients, returns `dx`.
    pub fn backward(&mut self, cache: &MlpCache, dy: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut grad = dy.clone();
        for i in (0..self.layers.len()).rev() {
            if i < last {
                grad = self.activation.backward(&cache.act[i], &grad);
            }
            grad = self.layers[i].backward(&cache.linear[i], &grad);
        }
        grad
    }
}

impl Parameterized for Mlp {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::loss::softmax_cross_entropy;
    use crate::param::Adam;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[6, 16, 16, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.num_layers(), 3);
        let x = randn_matrix(5, 6, 1.0, &mut rng);
        let (y, _) = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(mlp.infer(&x), y);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        // Tanh avoids the ReLU kink issue in finite differences.
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng);
        let x = randn_matrix(3, 4, 1.0, &mut rng);
        grad_check(
            mlp,
            x,
            |m, x| m.forward(x),
            |m, c, dy| m.backward(c, dy),
            3e-2,
        );
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[2, 16, 2], Activation::Relu, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let (logits, cache) = mlp.forward(&x);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
            final_loss = loss;
            mlp.backward(&cache, &dlogits);
            opt.step(mlp.params_mut());
        }
        assert!(final_loss < 0.05, "XOR loss stayed at {final_loss}");
        let logits = mlp.infer(&x);
        for (i, &t) in targets.iter().enumerate() {
            let row = logits.row(i);
            let pred = if row[1] > row[0] { 1 } else { 0 };
            assert_eq!(pred, t, "sample {i}");
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        assert_eq!(Parameterized::num_params(&mlp), (3 * 5 + 5) + (5 * 2 + 2));
    }
}
