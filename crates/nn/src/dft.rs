//! Learnable frequency-domain filter over token sequences, the signature
//! component of FreeDyG (Tian et al., ICLR 2024).
//!
//! A sequence of `L` tokens with `C` channels is transformed channel-wise
//! with an explicit discrete Fourier transform, multiplied by a learnable
//! complex filter per (frequency, channel), and transformed back. The whole
//! operation is linear in the input, so backpropagation uses the adjoint
//! DFT; gradients for the complex filter follow the complex product rule.

use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

/// Learnable complex frequency filter for packed `(B · L, C)` sequences.
#[derive(Debug, Clone)]
pub struct FrequencyFilter {
    seq_len: usize,
    channels: usize,
    /// Real filter part, `(L, C)`, initialized to 1 (identity filter).
    pub re: Param,
    /// Imaginary filter part, `(L, C)`, initialized to 0.
    pub im: Param,
    cos: Matrix, // (L, L): cos(2π k n / L)
    sin: Matrix, // (L, L): sin(2π k n / L)
}

/// Backward cache: forward spectra per item.
#[derive(Debug)]
pub struct FrequencyFilterCache {
    /// `(B · L, C)` real spectra `F_re`.
    f_re: Matrix,
    /// `(B · L, C)` imaginary spectra `F_im`.
    f_im: Matrix,
}

impl FrequencyFilter {
    /// Identity-initialized filter for sequences of length `seq_len` with
    /// `channels` channels.
    pub fn new(seq_len: usize, channels: usize) -> Self {
        assert!(seq_len > 0 && channels > 0);
        let w = 2.0 * std::f32::consts::PI / seq_len as f32;
        let cos = Matrix::from_fn(seq_len, seq_len, |k, n| (w * (k * n) as f32).cos());
        let sin = Matrix::from_fn(seq_len, seq_len, |k, n| (w * (k * n) as f32).sin());
        Self {
            seq_len,
            channels,
            re: Param::new(Matrix::filled(seq_len, channels, 1.0)),
            im: Param::new(Matrix::zeros(seq_len, channels)),
            cos,
            sin,
        }
    }

    /// Sequence length `L`.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// DFT of packed sequences: returns `(F_re, F_im)`, each `(B · L, C)`.
    fn dft(&self, x: &Matrix) -> (Matrix, Matrix) {
        let b_size = x.rows() / self.seq_len;
        let mut f_re = Matrix::zeros(x.rows(), self.channels);
        let mut f_im = Matrix::zeros(x.rows(), self.channels);
        for b in 0..b_size {
            let base = b * self.seq_len;
            for k in 0..self.seq_len {
                let cos_k = self.cos.row(k);
                let sin_k = self.sin.row(k);
                let fr = f_re.row_mut(base + k);
                for (n, &ck) in cos_k.iter().enumerate() {
                    let xr = x.row(base + n);
                    for (c, f) in fr.iter_mut().enumerate() {
                        *f += ck * xr[c];
                    }
                }
                let fi = f_im.row_mut(base + k);
                for (n, &sk) in sin_k.iter().enumerate() {
                    let xr = x.row(base + n);
                    for (c, f) in fi.iter_mut().enumerate() {
                        *f -= sk * xr[c];
                    }
                }
            }
        }
        (f_re, f_im)
    }

    /// Forward: filter packed sequences `x: (B · L, C)` in the frequency
    /// domain and return the real part of the inverse transform.
    pub fn forward(&self, x: &Matrix) -> (Matrix, FrequencyFilterCache) {
        assert_eq!(x.cols(), self.channels);
        assert_eq!(x.rows() % self.seq_len, 0);
        let b_size = x.rows() / self.seq_len;
        let (f_re, f_im) = self.dft(x);
        let mut y = Matrix::zeros(x.rows(), self.channels);
        let inv_l = 1.0 / self.seq_len as f32;
        for b in 0..b_size {
            let base = b * self.seq_len;
            for n in 0..self.seq_len {
                for c in 0..self.channels {
                    let mut acc = 0.0f32;
                    for k in 0..self.seq_len {
                        let a = self.re.value.get(k, c);
                        let bb = self.im.value.get(k, c);
                        let fr = f_re.get(base + k, c);
                        let fi = f_im.get(base + k, c);
                        let g_re = a * fr - bb * fi;
                        let g_im = bb * fr + a * fi;
                        acc += self.cos.get(k, n) * g_re - self.sin.get(k, n) * g_im;
                    }
                    y.set(base + n, c, acc * inv_l);
                }
            }
        }
        (y, FrequencyFilterCache { f_re, f_im })
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// Backward pass; accumulates filter gradients and returns `dx`.
    pub fn backward(&mut self, cache: &FrequencyFilterCache, dy: &Matrix) -> Matrix {
        let b_size = dy.rows() / self.seq_len;
        let inv_l = 1.0 / self.seq_len as f32;
        let mut dx = Matrix::zeros(dy.rows(), self.channels);
        for b in 0..b_size {
            let base = b * self.seq_len;
            for k in 0..self.seq_len {
                for c in 0..self.channels {
                    // adjoint of the inverse transform
                    let mut dg_re = 0.0f32;
                    let mut dg_im = 0.0f32;
                    for n in 0..self.seq_len {
                        let d = dy.get(base + n, c);
                        dg_re += self.cos.get(k, n) * d;
                        dg_im -= self.sin.get(k, n) * d;
                    }
                    dg_re *= inv_l;
                    dg_im *= inv_l;
                    // complex product rule
                    let a = self.re.value.get(k, c);
                    let bb = self.im.value.get(k, c);
                    let fr = cache.f_re.get(base + k, c);
                    let fi = cache.f_im.get(base + k, c);
                    *self
                        .re
                        .grad
                        .row_mut(k)
                        .get_mut(c)
                        .expect("channel in range") += fr * dg_re + fi * dg_im;
                    *self
                        .im
                        .grad
                        .row_mut(k)
                        .get_mut(c)
                        .expect("channel in range") += -fi * dg_re + fr * dg_im;
                    let df_re = a * dg_re + bb * dg_im;
                    let df_im = -bb * dg_re + a * dg_im;
                    // adjoint of the forward DFT
                    for n in 0..self.seq_len {
                        let v = self.cos.get(k, n) * df_re - self.sin.get(k, n) * df_im;
                        *dx.row_mut(base + n).get_mut(c).expect("channel in range") += v;
                    }
                }
            }
        }
        dx
    }
}

impl Parameterized for FrequencyFilter {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.re, &mut self.im]
    }

    fn num_params(&self) -> usize {
        self.re.len() + self.im.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_filter_is_identity_map() {
        // With re=1, im=0 the filter is DFT followed by inverse DFT.
        let filt = FrequencyFilter::new(5, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let x = randn_matrix(5, 3, 1.0, &mut rng);
        let (y, _) = filt.forward(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_filter_zeroes_output() {
        let mut filt = FrequencyFilter::new(4, 2);
        filt.re.value = Matrix::zeros(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn_matrix(8, 2, 1.0, &mut rng);
        let (y, _) = filt.forward(&x);
        assert!(y.max_abs() < 1e-5);
    }

    #[test]
    fn dc_only_filter_averages() {
        // Keeping only the k=0 bin yields a constant sequence equal to the mean.
        let mut filt = FrequencyFilter::new(4, 1);
        filt.re.value = Matrix::zeros(4, 1);
        filt.re.value.set(0, 0, 1.0);
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 6.0]);
        let (y, _) = filt.forward(&x);
        for n in 0..4 {
            assert!((y.get(n, 0) - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_fd() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut filt = FrequencyFilter::new(3, 2);
        // Non-trivial filter so both re and im gradients are exercised.
        filt.re.value = randn_matrix(3, 2, 1.0, &mut rng);
        filt.im.value = randn_matrix(3, 2, 0.5, &mut rng);
        let x = randn_matrix(6, 2, 1.0, &mut rng); // B = 2
        grad_check(
            filt,
            x,
            |f, x| f.forward(x),
            |f, c, dy| f.backward(c, dy),
            3e-2,
        );
    }

    #[test]
    fn batch_items_independent() {
        let filt = FrequencyFilter::new(4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let a = randn_matrix(4, 2, 1.0, &mut rng);
        let b = randn_matrix(4, 2, 1.0, &mut rng);
        let packed = Matrix::concat_rows(&[&a, &b]);
        let (y, _) = filt.forward(&packed);
        let (ya, _) = filt.forward(&a);
        for i in 0..4 {
            for j in 0..2 {
                assert!((y.get(i, j) - ya.get(i, j)).abs() < 1e-4);
            }
        }
    }
}
