//! GRU cell with hand-written backpropagation.
//!
//! JODIE's recurrent embedding update, TGN's memory updater, and SLADE's
//! memory module are all GRU-style recurrent updates over per-node state.

use rand::Rng;

use crate::activation::sigmoid;
use crate::init::xavier;
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

/// A gated recurrent unit cell:
///
/// ```text
/// z = σ(x·Wz + h·Uz + bz)        (update gate)
/// r = σ(x·Wr + h·Ur + br)        (reset gate)
/// h̃ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Param,
    uz: Param,
    bz: Param,
    wr: Param,
    ur: Param,
    br: Param,
    wh: Param,
    uh: Param,
    bh: Param,
}

/// Backward cache for one GRU step.
#[derive(Debug, Clone)]
pub struct GruCache {
    x: Matrix,
    h: Matrix,
    z: Matrix,
    r: Matrix,
    h_cand: Matrix,
    rh: Matrix,
}

impl GruCell {
    /// A GRU cell mapping inputs of `x_dim` and states of `h_dim`.
    pub fn new<R: Rng + ?Sized>(x_dim: usize, h_dim: usize, rng: &mut R) -> Self {
        let b = || Param::new(Matrix::zeros(1, h_dim));
        Self {
            wz: Param::new(xavier(x_dim, h_dim, rng)),
            uz: Param::new(xavier(h_dim, h_dim, rng)),
            bz: b(),
            wr: Param::new(xavier(x_dim, h_dim, rng)),
            ur: Param::new(xavier(h_dim, h_dim, rng)),
            br: b(),
            wh: Param::new(xavier(x_dim, h_dim, rng)),
            uh: Param::new(xavier(h_dim, h_dim, rng)),
            bh: b(),
        }
    }

    /// Input dimension.
    pub fn x_dim(&self) -> usize {
        self.wz.value.rows()
    }

    /// State dimension.
    pub fn h_dim(&self) -> usize {
        self.wz.value.cols()
    }

    /// One step `(x: (B, x_dim), h: (B, h_dim)) → h': (B, h_dim)`.
    pub fn forward(&self, x: &Matrix, h: &Matrix) -> (Matrix, GruCache) {
        let z = x
            .matmul(&self.wz.value)
            .add(&h.matmul(&self.uz.value))
            .add_row_broadcast(self.bz.value.row(0))
            .map(sigmoid);
        let r = x
            .matmul(&self.wr.value)
            .add(&h.matmul(&self.ur.value))
            .add_row_broadcast(self.br.value.row(0))
            .map(sigmoid);
        let rh = r.hadamard(h);
        let h_cand = x
            .matmul(&self.wh.value)
            .add(&rh.matmul(&self.uh.value))
            .add_row_broadcast(self.bh.value.row(0))
            .map(f32::tanh);
        let h_new = h
            .zip_map(&z, |hv, zv| (1.0 - zv) * hv)
            .add(&z.hadamard(&h_cand));
        (
            h_new,
            GruCache { x: x.clone(), h: h.clone(), z, r, h_cand, rh },
        )
    }

    /// Inference-only step.
    pub fn infer(&self, x: &Matrix, h: &Matrix) -> Matrix {
        self.forward(x, h).0
    }

    /// Backward pass; returns `(dx, dh)` and accumulates parameter grads.
    pub fn backward(&mut self, cache: &GruCache, dh_new: &Matrix) -> (Matrix, Matrix) {
        let GruCache { x, h, z, r, h_cand, rh } = cache;

        // h' = (1 - z) ⊙ h + z ⊙ h̃
        let dh_cand = dh_new.hadamard(z);
        let dz = dh_new.hadamard(&h_cand.sub(h));
        let mut dh = dh_new.zip_map(z, |d, zv| d * (1.0 - zv));

        // candidate pre-activation
        let da_h = dh_cand.zip_map(h_cand, |d, y| d * (1.0 - y * y));
        let mut dx = da_h.matmul_nt(&self.wh.value);
        self.wh.grad.add_assign(&x.matmul_tn(&da_h));
        let drh = da_h.matmul_nt(&self.uh.value);
        self.uh.grad.add_assign(&rh.matmul_tn(&da_h));
        self.bh
            .grad
            .add_assign(&Matrix::from_vec(1, da_h.cols(), da_h.col_sums()));

        let dr = drh.hadamard(h);
        dh.add_assign(&drh.hadamard(r));

        // update gate pre-activation
        let da_z = dz.zip_map(z, |d, zv| d * zv * (1.0 - zv));
        dx.add_assign(&da_z.matmul_nt(&self.wz.value));
        dh.add_assign(&da_z.matmul_nt(&self.uz.value));
        self.wz.grad.add_assign(&x.matmul_tn(&da_z));
        self.uz.grad.add_assign(&h.matmul_tn(&da_z));
        self.bz
            .grad
            .add_assign(&Matrix::from_vec(1, da_z.cols(), da_z.col_sums()));

        // reset gate pre-activation
        let da_r = dr.zip_map(r, |d, rv| d * rv * (1.0 - rv));
        dx.add_assign(&da_r.matmul_nt(&self.wr.value));
        dh.add_assign(&da_r.matmul_nt(&self.ur.value));
        self.wr.grad.add_assign(&x.matmul_tn(&da_r));
        self.ur.grad.add_assign(&h.matmul_tn(&da_r));
        self.br
            .grad
            .add_assign(&Matrix::from_vec(1, da_r.cols(), da_r.col_sums()));

        (dx, dh)
    }
}

impl Parameterized for GruCell {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wz,
            &mut self.uz,
            &mut self.bz,
            &mut self.wr,
            &mut self.ur,
            &mut self.br,
            &mut self.wh,
            &mut self.uh,
            &mut self.bh,
        ]
    }

    fn num_params(&self) -> usize {
        let d_in = self.x_dim();
        let d_h = self.h_dim();
        3 * (d_in * d_h + d_h * d_h + d_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn state_shape_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(3, 5, &mut rng);
        let x = randn_matrix(4, 3, 1.0, &mut rng);
        let h = Matrix::zeros(4, 5);
        let (h2, _) = cell.forward(&x, &h);
        assert_eq!(h2.shape(), (4, 5));
        // From zero state, |h'| = |z ⊙ tanh(...)| < 1
        assert!(h2.max_abs() < 1.0);
    }

    #[test]
    fn input_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(3, 4, &mut rng);
        let h = randn_matrix(2, 4, 0.5, &mut rng);
        let x = randn_matrix(2, 3, 1.0, &mut rng);
        // grad_check varies x and all params; h is held fixed inside forward.
        grad_check(
            cell,
            x,
            |c, x| c.forward(x, &h),
            |c, cache, dy| c.backward(cache, dy).0,
            3e-2,
        );
    }

    #[test]
    fn state_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cell = GruCell::new(3, 4, &mut rng);
        let x = randn_matrix(2, 3, 1.0, &mut rng);
        let h = randn_matrix(2, 4, 0.5, &mut rng);
        let (y, cache) = cell.forward(&x, &h);
        let coef = crate::test_util::probe_coefficients(y.rows(), y.cols());
        let (_, dh) = cell.backward(&cache, &coef);
        let eps = 5e-3f32;
        for idx in 0..h.len() {
            let mut hp = h.clone();
            hp.data_mut()[idx] += eps;
            let mut hm = h.clone();
            hm.data_mut()[idx] -= eps;
            let lp = cell.infer(&x, &hp).hadamard(&coef).sum();
            let lm = cell.infer(&x, &hm).hadamard(&coef).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dh.data()[idx];
            assert!(
                (analytic - numeric).abs() < 3e-2 * 1.0f32.max(analytic.abs()),
                "dh[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(3, 4, &mut rng);
        assert_eq!(Parameterized::num_params(&cell), 3 * (12 + 16 + 4));
    }
}
