//! Dense row-major `f32` matrices with the handful of operations the
//! hand-written backpropagation layers need.
//!
//! This is deliberately not a general linear-algebra library: every operation
//! here is used by at least one layer in this crate or one model built on it.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty 0×0 matrix (no heap allocation); the natural seed value for
    /// reusable buffers that are later [`Matrix::resize_zeroed`].
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from row-major data; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1×n row matrix holding a copy of `v` (the slice is copied, not
    /// borrowed; the matrix owns its data).
    pub fn row_from_slice(v: &[f32]) -> Self {
        Self { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Stacks equal-width rows into a matrix. Panics on ragged input.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// Heap capacity of the backing buffer, in elements. Used by
    /// [`crate::workspace::Workspace`] to pick a buffer that can hold a
    /// requested shape without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes to `rows × cols` with every element zero, reusing the
    /// existing heap buffer. Allocates only when the current capacity is
    /// smaller than `rows * cols` — repeated same-shape (or shrinking)
    /// resizes are allocation-free.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows × cols` without clearing: existing elements keep
    /// whatever values they had (any grown tail is zeroed). Only for
    /// callers that overwrite every element immediately — the `matmul*_into`
    /// wrappers and the `*_cross_entropy_into` losses use this so their own
    /// assignment pass is the only full sweep over the output.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an element-wise copy of `src` (shape included), reusing
    /// the existing heap buffer when capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self · other`; shapes `(m,n)·(n,p) → (m,p)`.
    ///
    /// Executes on [`crate::backend::default_backend`] — parallel blocked
    /// kernels by default, bit-identical to the serial reference (see the
    /// [`crate::backend`] module docs for the determinism contract).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::backend::default_backend().matmul(self, other)
    }

    /// `selfᵀ · other`; shapes `(m,n)ᵀ·(m,p) → (n,p)`. Used for weight
    /// gradients without materializing transposes.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        crate::backend::default_backend().matmul_tn(self, other)
    }

    /// `self · otherᵀ`; shapes `(m,n)·(p,n)ᵀ → (m,p)`. Used for input
    /// gradients without materializing transposes.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        crate::backend::default_backend().matmul_nt(self, other)
    }

    /// [`Matrix::matmul`] on an explicit [`crate::backend::Backend`]
    /// (benchmark comparisons, or pinning a path regardless of features).
    pub fn matmul_with(&self, other: &Matrix, backend: &dyn crate::backend::Backend) -> Matrix {
        backend.matmul(self, other)
    }

    /// [`Matrix::matmul`] into a caller-owned buffer: `out` is reshaped to
    /// `(self.rows, other.cols)` (reusing its heap allocation when capacity
    /// allows) and overwritten with `self · other`.
    ///
    /// Panics when `self.cols != other.rows` — the same shape contract as
    /// [`Matrix::matmul`]; `out`'s incoming shape is irrelevant because it
    /// is resized first. Bit-identical to the allocating version.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        out.resize_for_overwrite(self.rows, other.cols());
        crate::backend::default_backend().matmul_into(self, other, out);
    }

    /// [`Matrix::matmul_tn`] into a caller-owned buffer (`out` becomes
    /// `selfᵀ · other`, shape `(self.cols, other.cols)`).
    ///
    /// Panics when `self.rows != other.rows`; `out` is resized, so its
    /// incoming shape is irrelevant.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        out.resize_for_overwrite(self.cols, other.cols());
        crate::backend::default_backend().matmul_tn_into(self, other, out);
    }

    /// [`Matrix::matmul_nt`] into a caller-owned buffer (`out` becomes
    /// `self · otherᵀ`, shape `(self.rows, other.rows)`).
    ///
    /// Panics when `self.cols != other.cols`; `out` is resized, so its
    /// incoming shape is irrelevant.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        out.resize_for_overwrite(self.rows, other.rows());
        crate::backend::default_backend().matmul_nt_into(self, other, out);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    fn assert_same_shape(&self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other);
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other);
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other);
        self.zip_map(other, |a, b| a * b)
    }

    /// Scaled copy.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|a| a * s)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Zeroes all elements, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Adds the row vector `v` to every row (bias broadcast).
    pub fn add_row_broadcast(&self, v: &[f32]) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(v);
        out
    }

    /// In-place bias broadcast: adds `v` to every row.
    pub fn add_row_broadcast_assign(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for i in 0..self.rows {
            for (o, &b) in self.row_mut(i).iter_mut().zip(v) {
                *o += b;
            }
        }
    }

    /// Per-column scaling: column `j` is multiplied by `s[j]`.
    pub fn scale_cols(&self, s: &[f32]) -> Matrix {
        assert_eq!(s.len(), self.cols);
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &f) in out.row_mut(i).iter_mut().zip(s) {
                *o *= f;
            }
        }
        out
    }

    /// Per-row scaling: row `i` is multiplied by `s[i]`.
    pub fn scale_rows(&self, s: &[f32]) -> Matrix {
        let mut out = self.clone();
        out.scale_rows_assign(s);
        out
    }

    /// In-place per-row scaling: row `i` is multiplied by `s[i]`.
    pub fn scale_rows_assign(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.rows);
        for (i, &f) in s.iter().enumerate() {
            for o in self.row_mut(i) {
                *o *= f;
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Element-wise binary map.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Column sums as a vector of length `cols` (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.col_sums_into(&mut out);
        out
    }

    /// [`Matrix::col_sums`] into a caller-owned slice of length `cols`.
    /// `out` is overwritten (zeroed first), not accumulated into.
    pub fn col_sums_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "col_sums_into length mismatch");
        out.fill(0.0);
        for i in 0..self.rows {
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a;
            }
        }
    }

    /// Row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Horizontal concatenation `[a | b | …]` of equal-height matrices.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols height mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            for p in parts {
                out.data[i * cols + off..i * cols + off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Vertical concatenation of equal-width matrices.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "concat_rows width mismatch");
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Copy of the column block `col_range`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols);
        let mut out = Matrix::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Copy of the row block `start..end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Largest absolute element; 0 for empty matrices.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b).data(), a.transpose().matmul(&b).data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|x| x as f32 * 0.5).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b).data(), a.matmul(&b.transpose()).data());
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn broadcast_and_row_scale() {
        let a = Matrix::zeros(2, 2);
        let b = a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(b.data(), &[1.0, 2.0, 1.0, 2.0]);
        let c = b.scale_rows(&[2.0, 3.0]);
        assert_eq!(c.data(), &[2.0, 4.0, 3.0, 6.0]);
    }

    #[test]
    fn sums() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.row_sums(), vec![6.0, 15.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[5.0, 6.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);

        let d = Matrix::concat_rows(&[&a, &a]);
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.slice_rows(2, 4), a);
    }

    #[test]
    fn axpy_and_norms() {
        let mut a = m(1, 2, &[3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        let b = m(1, 2, &[1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_rows_and_set_row() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.set_row(1, &[7.0, 8.0]);
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }
}
