//! Multi-head attention with hand-written backpropagation.
//!
//! Two shapes are used by the baseline TGNNs:
//!
//! * [`CrossAttention`] — one query per batch item attending over that item's
//!   (variable-length) neighbor sequence. This is the aggregation used by
//!   TGAT, TGN, and DySAT's structural layer.
//! * [`SelfAttention`] / [`TransformerBlock`] — full self-attention over the
//!   neighbor sequence, used by DyGFormer.
//!
//! Sequences are packed densely: a batch of `B` items with maximum length
//! `L` is a `(B·L, d)` matrix plus a `lens: &[usize]` vector; rows beyond an
//! item's length are ignored (masked).

use rand::Rng;

use crate::activation::Activation;
use crate::init::xavier;
use crate::layer_norm::{LayerNorm, LayerNormCache};
use crate::linear::{Linear, LinearCache};
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

fn head_slice(row: &[f32], head: usize, dh: usize) -> &[f32] {
    &row[head * dh..(head + 1) * dh]
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Softmax over a small slice, in place.
fn softmax_slice(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// Multi-head attention of a single query over a packed key/value sequence.
#[derive(Debug, Clone)]
pub struct CrossAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    heads: usize,
}

/// Backward cache for [`CrossAttention`].
#[derive(Debug)]
pub struct CrossAttentionCache {
    query: Matrix,
    kv: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention weights, `(B * heads, L)`, zero beyond each item's length.
    attn: Matrix,
    ctx: Matrix,
    lens: Vec<usize>,
    max_len: usize,
}

impl CrossAttention {
    /// Attention with `heads` heads over model dimension `dim`
    /// (`dim % heads == 0`); queries have dimension `q_dim`, keys/values
    /// `kv_dim`.
    pub fn new<R: Rng + ?Sized>(
        q_dim: usize,
        kv_dim: usize,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must be divisible by heads");
        Self {
            wq: Param::new(xavier(q_dim, dim, rng)),
            wk: Param::new(xavier(kv_dim, dim, rng)),
            wv: Param::new(xavier(kv_dim, dim, rng)),
            wo: Param::new(xavier(dim, dim, rng)),
            heads,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.wq.value.cols()
    }

    /// Forward pass.
    ///
    /// * `query`: `(B, q_dim)`;
    /// * `kv`: `(B · max_len, kv_dim)` packed sequences;
    /// * `lens`: valid length per item (`lens[b] <= max_len`).
    ///
    /// Returns `(B, dim)`; items with `lens[b] == 0` get a zero context.
    pub fn forward(
        &self,
        query: &Matrix,
        kv: &Matrix,
        lens: &[usize],
        max_len: usize,
    ) -> (Matrix, CrossAttentionCache) {
        let b_size = query.rows();
        assert_eq!(lens.len(), b_size);
        assert_eq!(kv.rows(), b_size * max_len, "packed kv shape mismatch");
        let dim = self.dim();
        let dh = dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = query.matmul(&self.wq.value);
        let k = kv.matmul(&self.wk.value);
        let v = kv.matmul(&self.wv.value);

        let mut attn = Matrix::zeros(b_size * self.heads, max_len.max(1));
        let mut ctx = Matrix::zeros(b_size, dim);
        for (b, &qlen) in lens.iter().enumerate().take(b_size) {
            let len = qlen.min(max_len);
            if len == 0 {
                continue;
            }
            for h in 0..self.heads {
                let q_h = head_slice(q.row(b), h, dh);
                let mut scores: Vec<f32> = (0..len)
                    .map(|l| dot(q_h, head_slice(k.row(b * max_len + l), h, dh)) * scale)
                    .collect();
                softmax_slice(&mut scores);
                let attn_row = attn.row_mut(b * self.heads + h);
                attn_row[..len].copy_from_slice(&scores);
                let ctx_row = ctx.row_mut(b);
                for (l, &a) in scores.iter().enumerate() {
                    let v_h = head_slice(v.row(b * max_len + l), h, dh);
                    for (j, &vv) in v_h.iter().enumerate() {
                        ctx_row[h * dh + j] += a * vv;
                    }
                }
            }
        }
        let out = ctx.matmul(&self.wo.value);
        (
            out,
            CrossAttentionCache {
                query: query.clone(),
                kv: kv.clone(),
                q,
                k,
                v,
                attn,
                ctx,
                lens: lens.to_vec(),
                max_len,
            },
        )
    }

    /// Inference-only forward.
    pub fn infer(&self, query: &Matrix, kv: &Matrix, lens: &[usize], max_len: usize) -> Matrix {
        self.forward(query, kv, lens, max_len).0
    }

    /// Backward pass; returns `(dquery, dkv)`.
    pub fn backward(
        &mut self,
        cache: &CrossAttentionCache,
        dout: &Matrix,
    ) -> (Matrix, Matrix) {
        let b_size = cache.query.rows();
        let dim = self.dim();
        let dh = dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let max_len = cache.max_len;

        // out = ctx · Wo
        self.wo.grad.add_assign(&cache.ctx.matmul_tn(dout));
        let dctx = dout.matmul_nt(&self.wo.value);

        let mut dq = Matrix::zeros(b_size, dim);
        let mut dk = Matrix::zeros(cache.k.rows(), dim);
        let mut dv = Matrix::zeros(cache.v.rows(), dim);

        for b in 0..b_size {
            let len = cache.lens[b].min(max_len);
            if len == 0 {
                continue;
            }
            for h in 0..self.heads {
                let attn_row = &cache.attn.row(b * self.heads + h)[..len];
                let dctx_h = head_slice(dctx.row(b), h, dh).to_vec();
                // dv and d(attention weights)
                let mut dattn = vec![0.0f32; len];
                for l in 0..len {
                    let a = attn_row[l];
                    let v_h = head_slice(cache.v.row(b * max_len + l), h, dh);
                    dattn[l] = dot(&dctx_h, v_h);
                    let dv_row = dv.row_mut(b * max_len + l);
                    for (j, &d) in dctx_h.iter().enumerate() {
                        dv_row[h * dh + j] += a * d;
                    }
                }
                // softmax backward
                let inner: f32 = dattn.iter().zip(attn_row).map(|(d, a)| d * a).sum();
                let ds: Vec<f32> = dattn
                    .iter()
                    .zip(attn_row)
                    .map(|(d, a)| a * (d - inner))
                    .collect();
                // dq_h and dk
                let q_h = head_slice(cache.q.row(b), h, dh).to_vec();
                {
                    let dq_row = dq.row_mut(b);
                    for (l, &s) in ds.iter().enumerate() {
                        let k_h = head_slice(cache.k.row(b * max_len + l), h, dh);
                        for (j, &kv_) in k_h.iter().enumerate() {
                            dq_row[h * dh + j] += s * kv_ * scale;
                        }
                    }
                }
                for (l, &s) in ds.iter().enumerate() {
                    let dk_row = dk.row_mut(b * max_len + l);
                    for (j, &qv) in q_h.iter().enumerate() {
                        dk_row[h * dh + j] += s * qv * scale;
                    }
                }
            }
        }

        self.wq.grad.add_assign(&cache.query.matmul_tn(&dq));
        self.wk.grad.add_assign(&cache.kv.matmul_tn(&dk));
        self.wv.grad.add_assign(&cache.kv.matmul_tn(&dv));
        let dquery = dq.matmul_nt(&self.wq.value);
        let mut dkv = dk.matmul_nt(&self.wk.value);
        dkv.add_assign(&dv.matmul_nt(&self.wv.value));
        (dquery, dkv)
    }
}

impl Parameterized for CrossAttention {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn num_params(&self) -> usize {
        self.wq.len() + self.wk.len() + self.wv.len() + self.wo.len()
    }
}

/// Multi-head self-attention over packed sequences.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    heads: usize,
}

/// Backward cache for [`SelfAttention`].
#[derive(Debug)]
pub struct SelfAttentionCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention rows, `(B * heads * L, L)` flattened per (b, h).
    attn: Vec<Matrix>,
    o: Matrix,
    lens: Vec<usize>,
    max_len: usize,
}

impl SelfAttention {
    /// Self-attention with `heads` heads over model dimension `dim`.
    pub fn new<R: Rng + ?Sized>(dim: usize, heads: usize, rng: &mut R) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must be divisible by heads");
        Self {
            wq: Param::new(xavier(dim, dim, rng)),
            wk: Param::new(xavier(dim, dim, rng)),
            wv: Param::new(xavier(dim, dim, rng)),
            wo: Param::new(xavier(dim, dim, rng)),
            heads,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.wq.value.cols()
    }

    /// Forward over packed sequences `x: (B · max_len, dim)`.
    pub fn forward(
        &self,
        x: &Matrix,
        lens: &[usize],
        max_len: usize,
    ) -> (Matrix, SelfAttentionCache) {
        let b_size = lens.len();
        assert_eq!(x.rows(), b_size * max_len);
        let dim = self.dim();
        let dh = dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);

        let mut o = Matrix::zeros(x.rows(), dim);
        let mut attn = Vec::with_capacity(b_size * self.heads);
        for (b, &qlen) in lens.iter().enumerate().take(b_size) {
            let len = qlen.min(max_len);
            for h in 0..self.heads {
                let mut a = Matrix::zeros(len.max(1), len.max(1));
                for i in 0..len {
                    let q_h = head_slice(q.row(b * max_len + i), h, dh);
                    let mut scores: Vec<f32> = (0..len)
                        .map(|j| dot(q_h, head_slice(k.row(b * max_len + j), h, dh)) * scale)
                        .collect();
                    softmax_slice(&mut scores);
                    a.row_mut(i)[..len].copy_from_slice(&scores);
                    let o_row = o.row_mut(b * max_len + i);
                    for (j, &w) in scores.iter().enumerate() {
                        let v_h = head_slice(v.row(b * max_len + j), h, dh);
                        for (c, &vv) in v_h.iter().enumerate() {
                            o_row[h * dh + c] += w * vv;
                        }
                    }
                }
                attn.push(a);
            }
        }
        let out = o.matmul(&self.wo.value);
        (
            out,
            SelfAttentionCache {
                x: x.clone(),
                q,
                k,
                v,
                attn,
                o,
                lens: lens.to_vec(),
                max_len,
            },
        )
    }

    /// Backward pass; returns `dx` over the packed layout.
    pub fn backward(&mut self, cache: &SelfAttentionCache, dout: &Matrix) -> Matrix {
        let b_size = cache.lens.len();
        let dim = self.dim();
        let dh = dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let max_len = cache.max_len;

        self.wo.grad.add_assign(&cache.o.matmul_tn(dout));
        let do_ = dout.matmul_nt(&self.wo.value);

        let mut dq = Matrix::zeros(cache.q.rows(), dim);
        let mut dk = Matrix::zeros(cache.k.rows(), dim);
        let mut dv = Matrix::zeros(cache.v.rows(), dim);

        for b in 0..b_size {
            let len = cache.lens[b].min(max_len);
            if len == 0 {
                continue;
            }
            for h in 0..self.heads {
                let a = &cache.attn[b * self.heads + h];
                for i in 0..len {
                    let do_h = head_slice(do_.row(b * max_len + i), h, dh).to_vec();
                    let a_row = &a.row(i)[..len];
                    let mut dattn = vec![0.0f32; len];
                    for j in 0..len {
                        let v_h = head_slice(cache.v.row(b * max_len + j), h, dh);
                        dattn[j] = dot(&do_h, v_h);
                        let dv_row = dv.row_mut(b * max_len + j);
                        for (c, &d) in do_h.iter().enumerate() {
                            dv_row[h * dh + c] += a_row[j] * d;
                        }
                    }
                    let inner: f32 = dattn.iter().zip(a_row).map(|(d, w)| d * w).sum();
                    let q_h = head_slice(cache.q.row(b * max_len + i), h, dh).to_vec();
                    for j in 0..len {
                        let ds = a_row[j] * (dattn[j] - inner);
                        {
                            let dq_row = dq.row_mut(b * max_len + i);
                            let k_h = head_slice(cache.k.row(b * max_len + j), h, dh);
                            for (c, &kv_) in k_h.iter().enumerate() {
                                dq_row[h * dh + c] += ds * kv_ * scale;
                            }
                        }
                        let dk_row = dk.row_mut(b * max_len + j);
                        for (c, &qv) in q_h.iter().enumerate() {
                            dk_row[h * dh + c] += ds * qv * scale;
                        }
                    }
                }
            }
        }

        self.wq.grad.add_assign(&cache.x.matmul_tn(&dq));
        self.wk.grad.add_assign(&cache.x.matmul_tn(&dk));
        self.wv.grad.add_assign(&cache.x.matmul_tn(&dv));
        let mut dx = dq.matmul_nt(&self.wq.value);
        dx.add_assign(&dk.matmul_nt(&self.wk.value));
        dx.add_assign(&dv.matmul_nt(&self.wv.value));
        dx
    }
}

impl Parameterized for SelfAttention {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn num_params(&self) -> usize {
        self.wq.len() + self.wk.len() + self.wv.len() + self.wo.len()
    }
}

/// Pre-LN transformer encoder block: self-attention and a two-layer FFN,
/// each with a residual connection.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    attn: SelfAttention,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

/// Backward cache for [`TransformerBlock`].
#[derive(Debug)]
pub struct TransformerBlockCache {
    ln1: LayerNormCache,
    attn: SelfAttentionCache,
    ln2: LayerNormCache,
    ff1: LinearCache,
    ff1_out: Matrix,
    ff2: LinearCache,
}

impl TransformerBlock {
    /// A block over model dimension `dim`, `heads` attention heads, and FFN
    /// width `ff_dim`.
    pub fn new<R: Rng + ?Sized>(dim: usize, heads: usize, ff_dim: usize, rng: &mut R) -> Self {
        Self {
            attn: SelfAttention::new(dim, heads, rng),
            ln1: LayerNorm::new(dim),
            ln2: LayerNorm::new(dim),
            ff1: Linear::new(dim, ff_dim, rng),
            ff2: Linear::new(ff_dim, dim, rng),
        }
    }

    /// Forward over packed sequences.
    pub fn forward(
        &self,
        x: &Matrix,
        lens: &[usize],
        max_len: usize,
    ) -> (Matrix, TransformerBlockCache) {
        let (n1, ln1_cache) = self.ln1.forward(x);
        let (a, attn_cache) = self.attn.forward(&n1, lens, max_len);
        let h = x.add(&a);
        let (n2, ln2_cache) = self.ln2.forward(&h);
        let (f1, ff1_cache) = self.ff1.forward(&n2);
        let f1_act = Activation::Relu.infer(&f1);
        let (f2, ff2_cache) = self.ff2.forward(&f1_act);
        let out = h.add(&f2);
        (
            out,
            TransformerBlockCache {
                ln1: ln1_cache,
                attn: attn_cache,
                ln2: ln2_cache,
                ff1: ff1_cache,
                ff1_out: f1,
                ff2: ff2_cache,
            },
        )
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &TransformerBlockCache, dout: &Matrix) -> Matrix {
        // out = h + ff2(relu(ff1(ln2(h))))
        let df2 = dout;
        let df1_act = self.ff2.backward(&cache.ff2, df2);
        let df1 = cache
            .ff1_out
            .zip_map(&df1_act, |pre, d| if pre > 0.0 { d } else { 0.0 });
        let dn2 = self.ff1.backward(&cache.ff1, &df1);
        let mut dh = self.ln2.backward(&cache.ln2, &dn2);
        dh.add_assign(dout); // residual
        // h = x + attn(ln1(x))
        let dn1 = self.attn.backward(&cache.attn, &dh);
        let mut dx = self.ln1.backward(&cache.ln1, &dn1);
        dx.add_assign(&dh); // residual
        dx
    }
}

impl Parameterized for TransformerBlock {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.attn.params_mut();
        out.extend(self.ln1.params_mut());
        out.extend(self.ln2.params_mut());
        out.extend(self.ff1.params_mut());
        out.extend(self.ff2.params_mut());
        out
    }

    fn num_params(&self) -> usize {
        self.attn.num_params()
            + self.ln1.num_params()
            + self.ln2.num_params()
            + self.ff1.num_params()
            + self.ff2.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::test_util::{grad_check, probe_coefficients};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn cross_attention_shapes_and_masking() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = CrossAttention::new(5, 7, 8, 2, &mut rng);
        let query = randn_matrix(3, 5, 1.0, &mut rng);
        let kv = randn_matrix(3 * 4, 7, 1.0, &mut rng);
        let (out, cache) = attn.forward(&query, &kv, &[4, 2, 0], 4);
        assert_eq!(out.shape(), (3, 8));
        // zero-length item yields zero context → zero output row after Wo
        assert!(out.row(2).iter().all(|&v| v == 0.0));
        // attention rows sum to 1 over valid length
        let a0: f32 = cache.attn.row(0).iter().sum();
        assert!((a0 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cross_attention_kv_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = CrossAttention::new(4, 4, 4, 2, &mut rng);
        let query = randn_matrix(2, 4, 1.0, &mut rng);
        let kv = randn_matrix(2 * 3, 4, 1.0, &mut rng);
        let lens = [3usize, 2];
        // grad-check w.r.t. kv (and all params)
        grad_check(
            attn,
            kv,
            |a, kv| a.forward(&query, kv, &lens, 3),
            |a, c, dy| a.backward(c, dy).1,
            4e-2,
        );
    }

    #[test]
    fn cross_attention_query_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = CrossAttention::new(4, 4, 4, 1, &mut rng);
        let query = randn_matrix(2, 4, 1.0, &mut rng);
        let kv = randn_matrix(2 * 3, 4, 1.0, &mut rng);
        let lens = [2usize, 3];
        let (y, cache) = attn.forward(&query, &kv, &lens, 3);
        let coef = probe_coefficients(y.rows(), y.cols());
        let mut attn2 = attn.clone();
        let (dquery, _) = attn2.backward(&cache, &coef);
        let eps = 5e-3f32;
        for idx in 0..query.len() {
            let mut qp = query.clone();
            qp.data_mut()[idx] += eps;
            let mut qm = query.clone();
            qm.data_mut()[idx] -= eps;
            let lp = attn.infer(&qp, &kv, &lens, 3).hadamard(&coef).sum();
            let lm = attn.infer(&qm, &kv, &lens, 3).hadamard(&coef).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dquery.data()[idx];
            assert!(
                (analytic - numeric).abs() < 4e-2 * 1.0f32.max(analytic.abs()),
                "dquery[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn self_attention_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = SelfAttention::new(4, 2, &mut rng);
        let x = randn_matrix(2 * 3, 4, 1.0, &mut rng);
        let lens = [3usize, 2];
        grad_check(
            attn,
            x,
            |a, x| a.forward(x, &lens, 3),
            |a, c, dy| a.backward(c, dy),
            4e-2,
        );
    }

    #[test]
    fn transformer_block_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = TransformerBlock::new(4, 2, 6, &mut rng);
        let x = randn_matrix(2 * 2, 4, 1.0, &mut rng);
        let lens = [2usize, 2];
        grad_check(
            block,
            x,
            |b, x| b.forward(x, &lens, 2),
            |b, c, dy| b.backward(c, dy),
            6e-2,
        );
    }

    #[test]
    fn attention_is_permutation_equivariant_over_values() {
        // Attention over identical keys averages values, independent of order.
        let mut rng = StdRng::seed_from_u64(5);
        let attn = CrossAttention::new(4, 4, 4, 1, &mut rng);
        let query = randn_matrix(1, 4, 1.0, &mut rng);
        let row = randn_matrix(1, 4, 1.0, &mut rng);
        let kv = Matrix::concat_rows(&[&row, &row, &row]);
        let (out, cache) = attn.forward(&query, &kv, &[3], 3);
        // all weights equal
        let a = cache.attn.row(0);
        assert!((a[0] - a[1]).abs() < 1e-5 && (a[1] - a[2]).abs() < 1e-5);
        assert_eq!(out.shape(), (1, 4));
    }
}
