//! Time encodings.
//!
//! Two flavours are needed across the paper and its baselines:
//!
//! * [`FixedTimeEncode`] — SPLASH's fixed cosine encoding (paper Eq. 15):
//!   `φ_t(t') = cos(t' · [α^{-0/β}, …, α^{-(d_t-1)/β}])`, with no trainable
//!   parameters;
//! * [`LearnableTimeEncode`] — the TGAT-family encoding
//!   `z(t) = cos(t·w + b)` with trainable frequencies `w` and phases `b`.

use rand::Rng;

use crate::init::randn_matrix;
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

/// SPLASH's fixed sinusoidal time encoding (Eq. 15).
#[derive(Debug, Clone)]
pub struct FixedTimeEncode {
    freqs: Vec<f32>,
}

impl FixedTimeEncode {
    /// Encoding of dimension `dim` with scale hyperparameters `alpha` and
    /// `beta` (the paper's `α`, `β`).
    pub fn new(dim: usize, alpha: f32, beta: f32) -> Self {
        assert!(dim > 0 && alpha > 0.0 && beta > 0.0);
        let freqs = (0..dim)
            .map(|i| alpha.powf(-(i as f32) / beta))
            .collect();
        Self { freqs }
    }

    /// The paper's default configuration: `α = β = √d_t`, mirroring the
    /// GraphMixer encoding it cites.
    pub fn with_default_scale(dim: usize) -> Self {
        let s = (dim as f32).sqrt();
        Self::new(dim, s.max(1.0 + 1e-3), s.max(1.0 + 1e-3))
    }

    /// Encoding dimension `d_t`.
    pub fn dim(&self) -> usize {
        self.freqs.len()
    }

    /// Encodes one time delta.
    pub fn encode(&self, dt: f64) -> Vec<f32> {
        self.freqs.iter().map(|&f| ((dt as f32) * f).cos()).collect()
    }

    /// Encodes one time delta into a caller-owned slice of length
    /// [`FixedTimeEncode::dim`] (panics otherwise; no allocation).
    pub fn encode_into(&self, dt: f64, out: &mut [f32]) {
        assert_eq!(out.len(), self.freqs.len(), "encode_into length mismatch");
        for (o, &f) in out.iter_mut().zip(&self.freqs) {
            *o = ((dt as f32) * f).cos();
        }
    }

    /// Encodes a batch of time deltas into a `(B, d_t)` matrix.
    pub fn encode_batch(&self, dts: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(dts.len(), self.dim());
        for (i, &dt) in dts.iter().enumerate() {
            out.set_row(i, &self.encode(dt));
        }
        out
    }
}

/// Sinusoidal *degree* encoding (paper Eq. 3): interleaved cos/sin of the
/// degree scaled by geometric frequencies `α^{-n/2 / √d_v}`-style decay.
///
/// Even indices hold cosines, odd indices sines, matching the equation's
/// case split.
#[derive(Debug, Clone)]
pub struct DegreeEncode {
    dim: usize,
    alpha: f32,
}

impl DegreeEncode {
    /// Degree encoding of dimension `dim` with resolution hyperparameter
    /// `alpha` (larger `α` smooths small degree differences).
    pub fn new(dim: usize, alpha: f32) -> Self {
        assert!(dim > 0 && alpha > 1.0, "degree encoding needs dim > 0 and α > 1");
        Self { dim, alpha }
    }

    /// Encoding dimension `d_v`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a degree into a `d_v`-dimensional feature (Eq. 3).
    pub fn encode(&self, degree: u64) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.encode_into(degree, &mut out);
        out
    }

    /// [`DegreeEncode::encode`] into a caller-owned slice of length
    /// [`DegreeEncode::dim`] (panics otherwise; no allocation).
    pub fn encode_into(&self, degree: u64, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "encode_into length mismatch");
        let sqrt_dv = (self.dim as f32).sqrt();
        let d = degree as f32;
        for (n, o) in out.iter_mut().enumerate() {
            *o = if n % 2 == 0 {
                let scale = self.alpha.powf(-((n / 2) as f32) / sqrt_dv);
                (scale * d).cos()
            } else {
                let scale = self.alpha.powf(-(((n - 1) / 2) as f32) / sqrt_dv);
                (scale * d).sin()
            };
        }
    }
}

/// TGAT-style learnable time encoding `z(t) = cos(t ⊙ w + b)`.
#[derive(Debug, Clone)]
pub struct LearnableTimeEncode {
    /// Frequencies, shape `(1, dim)`.
    pub w: Param,
    /// Phases, shape `(1, dim)`.
    pub b: Param,
}

/// Backward cache for [`LearnableTimeEncode`].
#[derive(Debug, Clone)]
pub struct TimeEncodeCache {
    dts: Vec<f64>,
    /// `sin(t·w + b)` per element, needed for both parameter gradients.
    sin_arg: Matrix,
}

impl LearnableTimeEncode {
    /// Geometric frequency initialization `w_i = 1 / 10^{4i/dim}` plus small
    /// noise, the standard TGAT initialization.
    pub fn new<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let mut w = Matrix::zeros(1, dim);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = 1.0 / 10f32.powf(4.0 * i as f32 / dim as f32);
        }
        w.add_assign(&randn_matrix(1, dim, 1e-3, rng));
        Self { w: Param::new(w), b: Param::new(Matrix::zeros(1, dim)) }
    }

    /// Encoding dimension.
    pub fn dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Encodes a batch of time deltas `(B) → (B, dim)`.
    pub fn forward(&self, dts: &[f64]) -> (Matrix, TimeEncodeCache) {
        let dim = self.dim();
        let mut out = Matrix::zeros(dts.len(), dim);
        let mut sin_arg = Matrix::zeros(dts.len(), dim);
        let w = self.w.value.row(0);
        let b = self.b.value.row(0);
        for (i, &dt) in dts.iter().enumerate() {
            for j in 0..dim {
                let arg = dt as f32 * w[j] + b[j];
                out.set(i, j, arg.cos());
                sin_arg.set(i, j, arg.sin());
            }
        }
        (out, TimeEncodeCache { dts: dts.to_vec(), sin_arg })
    }

    /// Inference-only forward.
    pub fn infer(&self, dts: &[f64]) -> Matrix {
        self.forward(dts).0
    }

    /// Backward pass: accumulates `dw`, `db`. Time deltas are inputs, not
    /// activations, so no input gradient is returned.
    pub fn backward(&mut self, cache: &TimeEncodeCache, dy: &Matrix) {
        let dw = self.w.grad.row_mut(0);
        for (i, &dt) in cache.dts.iter().enumerate() {
            for (j, w) in dw.iter_mut().enumerate() {
                // d cos(arg)/d arg = -sin(arg); d arg/d w = t, d arg/d b = 1.
                let d_arg = -dy.get(i, j) * cache.sin_arg.get(i, j);
                *w += d_arg * dt as f32;
            }
        }
        let db = self.b.grad.row_mut(0);
        for i in 0..cache.dts.len() {
            for (j, b) in db.iter_mut().enumerate() {
                *b += -dy.get(i, j) * cache.sin_arg.get(i, j);
            }
        }
    }
}

impl Parameterized for LearnableTimeEncode {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::probe_coefficients;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fixed_encoding_bounded_and_deterministic() {
        let enc = FixedTimeEncode::new(8, 10.0, 4.0);
        let a = enc.encode(123.456);
        let b = enc.encode(123.456);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert_eq!(enc.encode(0.0), vec![1.0; 8]);
    }

    #[test]
    fn fixed_encoding_distinguishes_times() {
        let enc = FixedTimeEncode::with_default_scale(16);
        let a = enc.encode(1.0);
        let b = enc.encode(100.0);
        let dist: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 0.1, "encodings of distant times too close: {dist}");
    }

    #[test]
    fn degree_encoding_structure() {
        let enc = DegreeEncode::new(8, 50.0);
        let z = enc.encode(0);
        // at degree 0: cos terms are 1, sin terms are 0
        for (n, &v) in z.iter().enumerate() {
            if n % 2 == 0 {
                assert!((v - 1.0).abs() < 1e-6);
            } else {
                assert!(v.abs() < 1e-6);
            }
        }
        // equal degrees share encodings, different degrees differ
        assert_eq!(enc.encode(5), enc.encode(5));
        assert_ne!(enc.encode(5), enc.encode(6));
    }

    #[test]
    fn degree_alpha_controls_resolution() {
        // Larger α ⇒ neighboring degrees map to closer encodings.
        let coarse = DegreeEncode::new(16, 1000.0);
        let fine = DegreeEncode::new(16, 2.0);
        let dist = |e: &DegreeEncode| -> f32 {
            e.encode(10)
                .iter()
                .zip(e.encode(11))
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        assert!(dist(&coarse) < dist(&fine));
    }

    #[test]
    fn learnable_encode_param_grads_match_fd() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut enc = LearnableTimeEncode::new(6, &mut rng);
        let dts = [0.5f64, 3.0, 10.0];
        let (y, cache) = enc.forward(&dts);
        let coef = probe_coefficients(y.rows(), y.cols());
        enc.zero_grad();
        enc.backward(&cache, &coef);
        let dw = enc.w.grad.clone();
        let db = enc.b.grad.clone();
        let eps = 1e-3f32;
        for j in 0..6 {
            for (grad, param_is_w) in [(&dw, true), (&db, false)] {
                let orig = if param_is_w {
                    enc.w.value.get(0, j)
                } else {
                    enc.b.value.get(0, j)
                };
                let set = |enc: &mut LearnableTimeEncode, v: f32| {
                    if param_is_w {
                        enc.w.value.set(0, j, v)
                    } else {
                        enc.b.value.set(0, j, v)
                    }
                };
                set(&mut enc, orig + eps);
                let lp = enc.infer(&dts).hadamard(&coef).sum();
                set(&mut enc, orig - eps);
                let lm = enc.infer(&dts).hadamard(&coef).sum();
                set(&mut enc, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.get(0, j);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * 1.0f32.max(analytic.abs()),
                    "j={j} w={param_is_w}: {analytic} vs {numeric}"
                );
            }
        }
    }
}
