//! Truncated singular value decomposition via randomized subspace
//! iteration (Halko, Martinsson & Tropp 2011).
//!
//! Used by the GraRep-style positional embedding in the `embed` crate,
//! which factorizes log transition-probability matrices of the training
//! snapshot. The matrices involved are dense and small (training snapshots
//! have at most a few thousand nodes), so a randomized range finder with a
//! handful of power iterations recovers the leading subspace to high
//! accuracy at O(r·c·k) per iteration.

use rand::{rngs::StdRng, SeedableRng};

use crate::init::randn_matrix;
use crate::matrix::Matrix;

/// The truncated factorization `M ≈ U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `(rows, k)`, orthonormal columns.
    pub u: Matrix,
    /// Singular values, descending, non-negative.
    pub s: Vec<f32>,
    /// Right singular vectors, `(cols, k)`, orthonormal columns.
    pub v: Matrix,
}

impl TruncatedSvd {
    /// Reconstructs `U · diag(S) · Vᵀ` (for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let us = self.u.scale_cols(&self.s);
        us.matmul_nt(&self.v)
    }

    /// The embedding `U · diag(S^power)` — GraRep uses `power = 0.5`.
    pub fn embedding(&self, power: f32) -> Matrix {
        let sp: Vec<f32> = self.s.iter().map(|&x| x.max(0.0).powf(power)).collect();
        self.u.scale_cols(&sp)
    }
}

/// Rank-`k` truncated SVD of `m` with `iters` power iterations. `k` is
/// clamped to `min(rows, cols)`; with `k = 0` or an empty matrix, empty
/// factors are returned.
pub fn truncated_svd(m: &Matrix, k: usize, iters: usize, seed: u64) -> TruncatedSvd {
    let (r, c) = m.shape();
    let k = k.min(r).min(c);
    if k == 0 {
        return TruncatedSvd { u: Matrix::zeros(r, 0), s: Vec::new(), v: Matrix::zeros(c, 0) };
    }
    // Oversample the range finder for accuracy, then truncate back to k.
    let p = (k + 4).min(r).min(c);
    let mut rng = StdRng::seed_from_u64(seed);
    // Y = M · Ω, then orthonormalize; power iterations sharpen the spectrum.
    let omega = randn_matrix(c, p, 1.0, &mut rng);
    let mut q = orthonormalize(&m.matmul(&omega));
    for _ in 0..iters {
        // One power iteration: Q ← orth(M · (Mᵀ · Q)).
        q = orthonormalize(&m.matmul(&m.matmul_tn(&q)));
    }
    // B = Qᵀ·M is p×c; SVD of B via the eigendecomposition of B·Bᵀ (p×p).
    let b = q.matmul_tn(m); // (p, c) = Qᵀ M
    let bbt = b.matmul_nt(&b); // (p, p)
    let (eigvals, eigvecs) = jacobi_eigen_symmetric(&bbt, 100);
    // Sort eigenpairs descending.
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &bi| eigvals[bi].partial_cmp(&eigvals[a]).unwrap());
    let mut s = Vec::with_capacity(k);
    let mut u = Matrix::zeros(q.rows(), k);
    let mut v = Matrix::zeros(b.cols(), k);
    for (out_col, &src_col) in order.iter().take(k).enumerate() {
        let sigma = eigvals[src_col].max(0.0).sqrt();
        s.push(sigma);
        // u_i = Q · w_i, where w_i is the eigenvector of B·Bᵀ.
        for row in 0..q.rows() {
            let mut acc = 0.0;
            for j in 0..p {
                acc += q.get(row, j) * eigvecs.get(j, src_col);
            }
            u.set(row, out_col, acc);
        }
        // v_i = Bᵀ · w_i / σ_i.
        if sigma > 1e-12 {
            for row in 0..b.cols() {
                let mut acc = 0.0;
                for j in 0..p {
                    acc += b.get(j, row) * eigvecs.get(j, src_col);
                }
                v.set(row, out_col, acc / sigma);
            }
        }
    }
    TruncatedSvd { u, s, v }
}

/// Modified Gram–Schmidt orthonormalization of the columns of `m`, with
/// re-orthogonalization ("twice is enough") for f32 stability. Columns whose
/// residual is negligible *relative to their original norm* are zeroed —
/// an absolute threshold would keep amplified rounding noise whenever a
/// column is linearly dependent on its predecessors.
fn orthonormalize(m: &Matrix) -> Matrix {
    let (r, c) = m.shape();
    let mut q = m.clone();
    for j in 0..c {
        let original_norm =
            (0..r).map(|i| q.get(i, j) * q.get(i, j)).sum::<f32>().sqrt();
        for _pass in 0..2 {
            for prev in 0..j {
                let mut dot = 0.0f32;
                for i in 0..r {
                    dot += q.get(i, j) * q.get(i, prev);
                }
                for i in 0..r {
                    let v = q.get(i, j) - dot * q.get(i, prev);
                    q.set(i, j, v);
                }
            }
        }
        let norm = (0..r).map(|i| q.get(i, j) * q.get(i, j)).sum::<f32>().sqrt();
        if norm > (1e-5 * original_norm).max(1e-10) {
            for i in 0..r {
                q.set(i, j, q.get(i, j) / norm);
            }
        } else {
            for i in 0..r {
                q.set(i, j, 0.0);
            }
        }
    }
    q
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns
/// `(eigenvalues, eigenvectors-as-columns)`.
fn jacobi_eigen_symmetric(m: &Matrix, max_sweeps: usize) -> (Vec<f32>, Matrix) {
    let n = m.rows();
    assert_eq!(n, m.cols(), "Jacobi needs a square matrix");
    let mut a = m.clone();
    let mut v = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a.get(i, j) * a.get(i, j);
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Classic Jacobi rotation angle.
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (sin, cos) = phi.sin_cos();
                for i in 0..n {
                    let aip = a.get(i, p);
                    let aiq = a.get(i, q);
                    a.set(i, p, cos * aip + sin * aiq);
                    a.set(i, q, -sin * aip + cos * aiq);
                }
                for i in 0..n {
                    let api = a.get(p, i);
                    let aqi = a.get(q, i);
                    a.set(p, i, cos * api + sin * aqi);
                    a.set(q, i, -sin * api + cos * aqi);
                }
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, cos * vip + sin * viq);
                    v.set(i, q, -sin * vip + cos * viq);
                }
            }
        }
    }
    let eig = (0..n).map(|i| a.get(i, i)).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frob_diff(a: &Matrix, b: &Matrix) -> f32 {
        a.sub(b).frobenius_norm()
    }

    #[test]
    fn reconstructs_low_rank_matrices() {
        // rank-2 matrix: outer products of two fixed vectors.
        let u1 = [1.0f32, 2.0, -1.0, 0.5, 3.0];
        let u2 = [0.0f32, 1.0, 1.0, -2.0, 0.3];
        let v1 = [2.0f32, -1.0, 0.4];
        let v2 = [1.0f32, 1.0, -1.0];
        let m = Matrix::from_fn(5, 3, |i, j| 3.0 * u1[i] * v1[j] + 0.7 * u2[i] * v2[j]);
        let svd = truncated_svd(&m, 2, 4, 0);
        let err = frob_diff(&svd.reconstruct(), &m) / m.frobenius_norm();
        assert!(err < 1e-3, "relative reconstruction error {err}");
    }

    #[test]
    fn singular_values_descend_and_are_nonnegative() {
        let m = Matrix::from_fn(8, 6, |i, j| ((i * 7 + j * 3) as f32 * 0.41).sin());
        let svd = truncated_svd(&m, 4, 5, 1);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-5, "{:?}", svd.s);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn factors_are_orthonormal() {
        // A full-rank-by-construction matrix: a smooth part plus a diagonal
        // boost keeps all singular values well away from zero.
        let m = Matrix::from_fn(10, 7, |i, j| {
            ((i + 2 * j) as f32 * 0.73).cos() + if i == j { 2.0 + j as f32 } else { 0.0 }
        });
        let svd = truncated_svd(&m, 3, 5, 2);
        assert!(svd.s.iter().all(|&s| s > 0.1), "test needs nonzero σ: {:?}", svd.s);
        for a in 0..3 {
            for b in 0..3 {
                let dot_u: f32 = (0..10).map(|i| svd.u.get(i, a) * svd.u.get(i, b)).sum();
                let dot_v: f32 = (0..7).map(|i| svd.v.get(i, a) * svd.v.get(i, b)).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((dot_u - want).abs() < 1e-2, "UᵀU[{a}{b}] = {dot_u}");
                assert!((dot_v - want).abs() < 1e-2, "VᵀV[{a}{b}] = {dot_v}");
            }
        }
    }

    #[test]
    fn rank_deficient_inputs_zero_surplus_factors() {
        // sin(αi + βj) is exactly rank 2; asking for rank 3 must yield a
        // zero third factor (not amplified rounding noise) and still
        // reconstruct the matrix from the first two.
        let m = Matrix::from_fn(10, 7, |i, j| ((i + 2 * j) as f32 * 0.73).cos());
        let svd = truncated_svd(&m, 3, 5, 2);
        assert!(svd.s[2] < 1e-3 * svd.s[0], "third σ must vanish: {:?}", svd.s);
        let err = frob_diff(&svd.reconstruct(), &m) / m.frobenius_norm();
        assert!(err < 1e-3, "relative reconstruction error {err}");
    }

    #[test]
    fn leading_singular_value_matches_known_diagonal() {
        let mut m = Matrix::zeros(4, 4);
        for (i, &s) in [5.0f32, 3.0, 1.0, 0.1].iter().enumerate() {
            m.set(i, i, s);
        }
        let svd = truncated_svd(&m, 2, 6, 3);
        assert!((svd.s[0] - 5.0).abs() < 1e-2, "{:?}", svd.s);
        assert!((svd.s[1] - 3.0).abs() < 1e-2, "{:?}", svd.s);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty = truncated_svd(&Matrix::zeros(0, 0), 3, 2, 0);
        assert!(empty.s.is_empty());
        let zero = truncated_svd(&Matrix::zeros(4, 4), 2, 2, 0);
        assert!(zero.s.iter().all(|&x| x.abs() < 1e-6));
        let k_clamped = truncated_svd(&Matrix::filled(2, 3, 1.0), 10, 2, 0);
        assert_eq!(k_clamped.s.len(), 2);
    }

    #[test]
    fn embedding_scales_by_sqrt_singular_values() {
        let m = Matrix::from_fn(6, 6, |i, j| if i == j { (i + 1) as f32 } else { 0.0 });
        let svd = truncated_svd(&m, 2, 6, 4);
        let emb = svd.embedding(0.5);
        assert_eq!(emb.shape(), (6, 2));
        // Column norms equal s^0.5 because U has unit columns.
        for c in 0..2 {
            let norm: f32 = (0..6).map(|i| emb.get(i, c) * emb.get(i, c)).sum::<f32>().sqrt();
            assert!((norm - svd.s[c].sqrt()).abs() < 1e-2);
        }
    }
}
