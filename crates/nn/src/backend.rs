//! Pluggable linear-algebra backends for [`Matrix`] products.
//!
//! Every dense product in the workspace (SLIM forward/backward, every
//! baseline, the embedding solvers) funnels through the three kernels on
//! this trait, so swapping the execution strategy here retunes the whole
//! stack. Three backends ship today:
//!
//! * [`NaiveBackend`] — the original reference triple loops, kept as the
//!   semantic ground truth and for debugging;
//! * [`BlockedBackend`] — serial cache-blocked kernels (row-chunked with a
//!   depth-blocked inner loop) that keep the hot panel of the right-hand
//!   side in cache;
//! * [`ParallelBackend`] (feature `parallel`, on by default) — the blocked
//!   kernels fanned out over scoped threads, partitioned by output row.
//!
//! **Determinism.** All three backends accumulate every output element in
//! ascending-`k` order with a single `f32` accumulation chain, so their
//! results are *bit-identical* — to each other and to the pre-backend
//! scalar code. Parallelism only changes which thread computes a row, never
//! the order of floating-point operations within it. Tests therefore pass
//! unchanged with any backend, and `--no-default-features` builds are a
//! scheduling fallback, not a numeric fork.
//!
//! Future SIMD or GPU backends slot in by implementing [`Backend`]; batch
//! call sites that want an explicit choice use [`Matrix::matmul_with`].

use crate::matrix::Matrix;

/// Rows of the left operand processed per cache block.
const MC: usize = 32;
/// Depth (`k`) elements processed per cache block.
const KC: usize = 256;
/// Minimum multiply-add count before [`ParallelBackend`] spawns threads;
/// below this the fork/join overhead outweighs the speedup.
#[cfg(feature = "parallel")]
const PAR_MIN_FLOPS: usize = 1 << 18;

/// A linear-algebra execution strategy for the three dense products the
/// layers need. Implementations must return results bit-identical to
/// [`NaiveBackend`] (ascending-`k` single-chain accumulation per element).
pub trait Backend: Send + Sync {
    /// Human-readable backend name (used by benchmarks and diagnostics).
    fn name(&self) -> &'static str;

    /// `a · b`; shapes `(m,n)·(n,p) → (m,p)`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Matrix;

    /// `aᵀ · b`; shapes `(m,n)ᵀ·(m,p) → (n,p)` (weight gradients).
    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix;

    /// `a · bᵀ`; shapes `(m,n)·(p,n)ᵀ → (m,p)` (input gradients).
    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix;
}

fn check_nn(a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
}

fn check_tn(a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
}

fn check_nt(a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
}

/// The original single-threaded scalar loops, kept verbatim as the
/// reference implementation every other backend must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl Backend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, p);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &av) in a_row.iter().enumerate().take(n) {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_tn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(n, p);
        for k in 0..m {
            let a_row = a.row(k);
            let b_row = b.row(k);
            for (i, &av) in a_row.iter().enumerate().take(n) {
                if av == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nt(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.rows());
        let mut out = Matrix::zeros(m, p);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a_row[k] * b_row[k];
                }
                *o = acc;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Shared blocked kernels. Each writes a contiguous *chunk* of output rows,
// so the serial backend passes the whole output and the parallel backend
// passes per-thread slices. `row0` is the absolute index of the chunk's
// first output row.

/// `a · b` into `out_chunk` (rows `row0 ..`), depth-blocked by [`KC`] and
/// row-chunked by [`MC`] so the active panel of `b` is reused across rows.
fn nn_chunk(a: &[f32], n: usize, b: &[f32], p: usize, out_chunk: &mut [f32], row0: usize) {
    let rows = out_chunk.len() / p.max(1);
    for rr in (0..rows).step_by(MC) {
        let rend = (rr + MC).min(rows);
        for kk in (0..n).step_by(KC) {
            let kend = (kk + KC).min(n);
            for r in rr..rend {
                let a_row = &a[(row0 + r) * n..(row0 + r) * n + n];
                let out_row = &mut out_chunk[r * p..(r + 1) * p];
                for (k, &av) in a_row.iter().enumerate().take(kend).skip(kk) {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[k * p..k * p + p];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// `aᵀ · b` into `out_chunk` (output rows `row0 ..`, i.e. columns of `a`).
/// Streams `a` and `b` row-by-row (fully sequential access) and scatters
/// into the chunk's rows, so no transpose is ever materialized.
fn tn_chunk(
    a: &[f32],
    m: usize,
    n: usize,
    b: &[f32],
    p: usize,
    out_chunk: &mut [f32],
    row0: usize,
) {
    let rows = out_chunk.len() / p.max(1);
    for k in 0..m {
        let a_row = &a[k * n..k * n + n];
        let b_row = &b[k * p..k * p + p];
        for r in 0..rows {
            let av = a_row[row0 + r];
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out_chunk[r * p..(r + 1) * p];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `a · bᵀ` into `out_chunk` (rows `row0 ..`): blocked dot products, one
/// single-chain accumulator per element (bit-identical to the naive loop).
fn nt_chunk(a: &[f32], n: usize, b: &[f32], p: usize, out_chunk: &mut [f32], row0: usize) {
    let rows = out_chunk.len() / p.max(1);
    for rr in (0..rows).step_by(MC) {
        let rend = (rr + MC).min(rows);
        for jj in (0..p).step_by(MC) {
            let jend = (jj + MC).min(p);
            for r in rr..rend {
                let a_row = &a[(row0 + r) * n..(row0 + r) * n + n];
                let out_row = &mut out_chunk[r * p..(r + 1) * p];
                for (j, o) in out_row.iter_mut().enumerate().take(jend).skip(jj) {
                    let b_row = &b[j * n..j * n + n];
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += a_row[k] * b_row[k];
                    }
                    *o = acc;
                }
            }
        }
    }
}

/// Serial cache-blocked kernels; the single-thread fallback of
/// [`ParallelBackend`] and the default when the `parallel` feature is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

impl Backend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, p);
        nn_chunk(a.data(), n, b.data(), p, out.data_mut(), 0);
        out
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_tn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(n, p);
        tn_chunk(a.data(), m, n, b.data(), p, out.data_mut(), 0);
        out
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nt(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.rows());
        let mut out = Matrix::zeros(m, p);
        nt_chunk(a.data(), n, b.data(), p, out.data_mut(), 0);
        out
    }
}

#[cfg(feature = "parallel")]
thread_local! {
    static SERIAL_ONLY: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with [`ParallelBackend`] pinned to its serial blocked kernels
/// on the current thread.
///
/// For callers that already fan out at a coarser grain (e.g. chunk-parallel
/// batched inference): nesting thread spawns inside worker threads
/// oversubscribes the machine without changing any result, so workers wrap
/// their inner loop in this guard. Results are unaffected — serial and
/// parallel kernels are bit-identical by contract.
#[cfg(feature = "parallel")]
pub fn with_serial_backend<T>(f: impl FnOnce() -> T) -> T {
    let prev = SERIAL_ONLY.with(|c| c.replace(true));
    let out = f();
    SERIAL_ONLY.with(|c| c.set(prev));
    out
}

/// No-`parallel` builds are always serial; the guard is a plain call.
#[cfg(not(feature = "parallel"))]
pub fn with_serial_backend<T>(f: impl FnOnce() -> T) -> T {
    f()
}

/// Worker-thread count for [`ParallelBackend`]: the machine's available
/// parallelism, resolved once. The `NN_THREADS` environment variable
/// overrides it (useful for pinning benchmark comparisons and for
/// exercising the threaded code path on small machines).
#[cfg(feature = "parallel")]
pub fn num_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("NN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Splits `out`'s rows into contiguous per-thread chunks and runs `kernel`
/// on each chunk in a scoped thread (`kernel(chunk, row0)` receives the
/// chunk's backing slice and the absolute index of its first row). Chunks
/// are disjoint, so no synchronization is needed beyond the scope join.
///
/// Shared by the matmul kernels and by coarser-grained callers (e.g.
/// `splash::capture::encodings`) so every fan-out in the workspace honors
/// the same [`num_threads`] / `NN_THREADS` policy.
#[cfg(feature = "parallel")]
pub fn par_rows(out: &mut Matrix, kernel: impl Fn(&mut [f32], usize) + Sync) {
    par_rows_threads(out, num_threads(), kernel);
}

/// [`par_rows`] with an explicit thread count — the testable seam: unit
/// tests force uneven thread/row splits regardless of the host's cores.
#[cfg(feature = "parallel")]
fn par_rows_threads(out: &mut Matrix, threads: usize, kernel: impl Fn(&mut [f32], usize) + Sync) {
    let rows = out.rows();
    let p = out.cols();
    let threads = threads.min(rows).max(1);
    if threads <= 1 || p == 0 {
        kernel(out.data_mut(), 0);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in out.data_mut().chunks_mut(chunk_rows * p).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(chunk, ci * chunk_rows));
        }
    });
}

/// The blocked kernels partitioned over output rows across scoped threads.
/// Small products (fewer than ~2¹⁸ multiply-adds) run serially, where the
/// blocked kernel already wins; either way the bits are identical.
#[cfg(feature = "parallel")]
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelBackend;

#[cfg(feature = "parallel")]
impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul(a, b);
        }
        let mut out = Matrix::zeros(m, p);
        par_rows(&mut out, |chunk, row0| {
            nn_chunk(a.data(), n, b.data(), p, chunk, row0)
        });
        out
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_tn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul_tn(a, b);
        }
        let mut out = Matrix::zeros(n, p);
        par_rows(&mut out, |chunk, row0| {
            tn_chunk(a.data(), m, n, b.data(), p, chunk, row0)
        });
        out
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nt(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.rows());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul_nt(a, b);
        }
        let mut out = Matrix::zeros(m, p);
        par_rows(&mut out, |chunk, row0| {
            nt_chunk(a.data(), n, b.data(), p, chunk, row0)
        });
        out
    }
}

/// The backend behind [`Matrix::matmul`] and friends: [`ParallelBackend`]
/// when the `parallel` feature is on (the default), [`BlockedBackend`]
/// otherwise.
pub fn default_backend() -> &'static dyn Backend {
    #[cfg(feature = "parallel")]
    {
        static BACKEND: ParallelBackend = ParallelBackend;
        &BACKEND
    }
    #[cfg(not(feature = "parallel"))]
    {
        static BACKEND: BlockedBackend = BlockedBackend;
        &BACKEND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn cases() -> Vec<(Matrix, Matrix, Matrix)> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut out = Vec::new();
        for &(m, n, p) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (7, 5, 9),
            (16, 16, 16),
            (33, 65, 17),
            (70, 129, 48),
        ] {
            out.push((
                randn_matrix(m, n, 1.0, &mut rng),
                randn_matrix(n, p, 1.0, &mut rng),
                randn_matrix(m, p, 1.0, &mut rng),
            ));
        }
        out
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (a, b, _) in cases() {
            assert_eq!(
                NaiveBackend.matmul(&a, &b).data(),
                BlockedBackend.matmul(&a, &b).data()
            );
        }
    }

    #[test]
    fn blocked_tn_nt_match_naive_bitwise() {
        for (a, b, c) in cases() {
            // aᵀ·c : (m,n)ᵀ·(m,p); a·bᵀ needs matching cols: use (m,n)·(p,n).
            assert_eq!(
                NaiveBackend.matmul_tn(&a, &c).data(),
                BlockedBackend.matmul_tn(&a, &c).data()
            );
            let bt = b.transpose();
            assert_eq!(
                NaiveBackend.matmul_nt(&a, &bt).data(),
                BlockedBackend.matmul_nt(&a, &bt).data()
            );
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Big enough to cross PAR_MIN_FLOPS and exercise real threading.
        let a = randn_matrix(130, 90, 1.0, &mut rng);
        let b = randn_matrix(90, 110, 1.0, &mut rng);
        assert_eq!(
            NaiveBackend.matmul(&a, &b).data(),
            ParallelBackend.matmul(&a, &b).data()
        );
        let c = randn_matrix(130, 110, 1.0, &mut rng);
        assert_eq!(
            NaiveBackend.matmul_tn(&a, &c).data(),
            ParallelBackend.matmul_tn(&a, &c).data()
        );
        let bt = b.transpose();
        assert_eq!(
            NaiveBackend.matmul_nt(&a, &bt).data(),
            ParallelBackend.matmul_nt(&a, &bt).data()
        );
    }

    /// Forces the scoped-thread chunking (uneven splits included) no matter
    /// how many cores the host has: the row0/chunk arithmetic must place
    /// every output row exactly where the serial kernel would.
    #[cfg(feature = "parallel")]
    #[test]
    fn forced_thread_counts_match_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let (m, n, p) = (37usize, 29usize, 23usize); // awkward, non-divisible
        let a = randn_matrix(m, n, 1.0, &mut rng);
        let b = randn_matrix(n, p, 1.0, &mut rng);
        let reference = NaiveBackend.matmul(&a, &b);
        for threads in [2usize, 3, 5, 16, 64] {
            let mut out = Matrix::zeros(m, p);
            super::par_rows_threads(&mut out, threads, |chunk, row0| {
                super::nn_chunk(a.data(), n, b.data(), p, chunk, row0)
            });
            assert_eq!(reference.data(), out.data(), "threads = {threads}");
        }
    }

    #[test]
    fn zero_sized_products() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(BlockedBackend.matmul(&a, &b).shape(), (0, 3));
        let e = Matrix::zeros(3, 0);
        let f = Matrix::zeros(0, 2);
        assert_eq!(BlockedBackend.matmul(&e, &f).shape(), (3, 2));
    }
}
