//! Pluggable linear-algebra backends for [`Matrix`] products.
//!
//! Every dense product in the workspace (SLIM forward/backward, every
//! baseline, the embedding solvers) funnels through the three kernels on
//! this trait, so swapping the execution strategy here retunes the whole
//! stack. Three backends ship today:
//!
//! * [`NaiveBackend`] — the original reference triple loops, kept as the
//!   semantic ground truth and for debugging;
//! * [`BlockedBackend`] — serial cache-blocked kernels (row-chunked with a
//!   depth-blocked inner loop) with register-tiled microkernels: the
//!   `nn`/`tn` products run a 4-way `k`-unrolled fused rank-1 update that
//!   keeps each output element in a register across four `k` steps (4×
//!   less output traffic, SIMD-friendly row sweeps), and the `nt` product
//!   runs a 4×4 tile of sixteen *independent* dot-product chains, hiding
//!   the floating-point add latency that serializes a lone accumulator;
//! * [`ParallelBackend`] (feature `parallel`, on by default) — the blocked
//!   kernels fanned out over scoped threads, partitioned by output row.
//!
//! **Buffer ownership.** The primitive operations are the `*_into` methods,
//! which write into a caller-owned, pre-shaped output matrix and never
//! allocate; the allocating `matmul*` methods are provided wrappers that
//! create the output and delegate. Hot loops hold their outputs in a
//! [`crate::Workspace`] and call the `*_into` form ([`Matrix::matmul_into`]
//! resizes the buffer for you). The `*_into` methods panic when the operand
//! shapes disagree or `out` has the wrong shape; `out`'s *contents* are
//! irrelevant (they are overwritten, not accumulated into).
//!
//! **Determinism.** All three backends accumulate every output element in
//! ascending-`k` order with a single `f32` accumulation chain, so their
//! results are *bit-identical* — to each other and to the pre-backend
//! scalar code. Register tiling preserves this: every accumulator is
//! loaded from the output element it owns, receives the same multiplies
//! and additions in the same ascending-`k` order as the scalar loop
//! (unrolling fuses loop iterations, never reassociates sums), and is
//! stored back. The naive kernels' zero-skip (`a` elements that are
//! exactly `0.0` contribute no addition) is likewise preserved: the fused
//! fast path only runs when its `a` quad is zero-free. Parallelism only
//! changes which thread computes a row, never the order of floating-point
//! operations within it. Tests therefore pass unchanged with
//! any backend, and `--no-default-features` builds are a scheduling
//! fallback, not a numeric fork.
//!
//! Future SIMD or GPU backends slot in by implementing [`Backend`]; batch
//! call sites that want an explicit choice use [`Matrix::matmul_with`].

use crate::matrix::Matrix;

/// Rows of the left operand processed per cache block.
const MC: usize = 32;
/// Depth (`k`) elements processed per cache block.
const KC: usize = 256;
/// `k`-unroll factor of the fused rank-1 microkernel (`nn`/`tn` kernels).
const UK: usize = 4;
/// Output rows per register tile in the dot-product (`nt`) microkernel.
const MR: usize = 4;
/// Output columns per register tile in the dot-product (`nt`) microkernel.
const NR: usize = 4;
/// Minimum multiply-add count before [`ParallelBackend`] spawns threads;
/// below this the fork/join overhead outweighs the speedup.
#[cfg(feature = "parallel")]
const PAR_MIN_FLOPS: usize = 1 << 18;

/// A linear-algebra execution strategy for the three dense products the
/// layers need. Implementations must return results bit-identical to
/// [`NaiveBackend`] (ascending-`k` single-chain accumulation per element).
///
/// The `*_into` methods are the required primitives: they overwrite a
/// caller-owned output and perform no heap allocation. The allocating
/// `matmul*` methods are provided wrappers.
pub trait Backend: Send + Sync {
    /// Human-readable backend name (used by benchmarks and diagnostics).
    fn name(&self) -> &'static str;

    /// `a · b` into `out`; shapes `(m,n)·(n,p) → (m,p)`.
    ///
    /// Panics unless `a.cols() == b.rows()` and `out` is already `(m,p)`.
    /// `out`'s contents are overwritten; no allocation is performed.
    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `aᵀ · b` into `out`; shapes `(m,n)ᵀ·(m,p) → (n,p)` (weight
    /// gradients). Panics unless `a.rows() == b.rows()` and `out` is
    /// `(n,p)`. `out` is overwritten; no allocation is performed.
    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `a · bᵀ` into `out`; shapes `(m,n)·(p,n)ᵀ → (m,p)` (input
    /// gradients). Panics unless `a.cols() == b.cols()` and `out` is
    /// `(m,p)`. `out` is overwritten; no allocation is performed.
    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `a · b`; shapes `(m,n)·(n,p) → (m,p)`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nn(a, b);
        let mut out = Matrix::zeros(a.rows(), b.cols());
        self.matmul_into(a, b, &mut out);
        out
    }

    /// `aᵀ · b`; shapes `(m,n)ᵀ·(m,p) → (n,p)` (weight gradients).
    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_tn(a, b);
        let mut out = Matrix::zeros(a.cols(), b.cols());
        self.matmul_tn_into(a, b, &mut out);
        out
    }

    /// `a · bᵀ`; shapes `(m,n)·(p,n)ᵀ → (m,p)` (input gradients).
    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix {
        check_nt(a, b);
        let mut out = Matrix::zeros(a.rows(), b.rows());
        self.matmul_nt_into(a, b, &mut out);
        out
    }
}

fn check_nn(a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
}

fn check_tn(a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
}

fn check_nt(a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
}

fn check_out(out: &Matrix, rows: usize, cols: usize) {
    assert_eq!(out.shape(), (rows, cols), "matmul_into output shape mismatch");
}

/// The original single-threaded scalar loops, kept verbatim as the
/// reference implementation every other backend must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl Backend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        let (m, n) = (a.rows(), a.cols());
        check_out(out, m, b.cols());
        out.fill_zero();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &av) in a_row.iter().enumerate().take(n) {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        let (m, n) = (a.rows(), a.cols());
        check_out(out, n, b.cols());
        out.fill_zero();
        for k in 0..m {
            let a_row = a.row(k);
            let b_row = b.row(k);
            for (i, &av) in a_row.iter().enumerate().take(n) {
                if av == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        let (m, n) = (a.rows(), a.cols());
        check_out(out, m, b.rows());
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a_row[k] * b_row[k];
                }
                *o = acc;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared blocked kernels. Each writes a contiguous *chunk* of output rows,
// so the serial backend passes the whole output and the parallel backend
// passes per-thread slices. `row0` is the absolute index of the chunk's
// first output row. The accumulating `nn`/`tn` kernels assume `out_chunk`
// arrives zeroed (their `*_into` entry points zero it); the `nt` kernel
// assigns every output element, so its entry points skip the zeroing pass.
//
// The inner loops are 4×4 register-tiled: a tile of MR×NR output elements
// is loaded into scalar accumulators, swept over a `k` block in ascending
// order, and stored back. Loading the accumulators from `out` (rather than
// starting at zero and adding at the end) is what keeps each element's
// floating-point chain identical to the naive loop across `k` blocks.

/// One zero-skipping scalar-times-row update — the naive kernel's inner
/// loop, shared by the fallback and remainder paths.
#[inline(always)]
fn saxpy_row(av: f32, b_row: &[f32], out_row: &mut [f32]) {
    if av == 0.0 {
        return;
    }
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o += av * bv;
    }
}

/// `a · b` into `out_chunk` (rows `row0 ..`), depth-blocked by [`KC`],
/// row-chunked by [`MC`], with an [`UK`]-way `k`-unrolled register
/// microkernel: when the next [`UK`] elements of the `a` row are all
/// nonzero, their four rank-1 updates run fused in one pass over the output
/// row, so each output element is read and written once per [`UK`] `k`
/// steps instead of once per step. The fused pass performs the same
/// multiplies and additions in the same ascending-`k` order as the scalar
/// path, so the result is bit-identical; any zero in the quad falls back to
/// the zero-skipping scalar updates.
fn nn_chunk(a: &[f32], n: usize, b: &[f32], p: usize, out_chunk: &mut [f32], row0: usize) {
    let rows = out_chunk.len() / p.max(1);
    for rr in (0..rows).step_by(MC) {
        let rend = (rr + MC).min(rows);
        for kk in (0..n).step_by(KC) {
            let kend = (kk + KC).min(n);
            for r in rr..rend {
                let a_row = &a[(row0 + r) * n..(row0 + r) * n + n];
                let out_row = &mut out_chunk[r * p..(r + 1) * p];
                let mut k = kk;
                while k + UK <= kend {
                    let av = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                    if av[0] != 0.0 && av[1] != 0.0 && av[2] != 0.0 && av[3] != 0.0 {
                        let b0 = &b[k * p..k * p + p];
                        let b1 = &b[(k + 1) * p..(k + 1) * p + p];
                        let b2 = &b[(k + 2) * p..(k + 2) * p + p];
                        let b3 = &b[(k + 3) * p..(k + 3) * p + p];
                        for j in 0..p {
                            let mut o = out_row[j];
                            o += av[0] * b0[j];
                            o += av[1] * b1[j];
                            o += av[2] * b2[j];
                            o += av[3] * b3[j];
                            out_row[j] = o;
                        }
                    } else {
                        for (dk, &v) in av.iter().enumerate() {
                            saxpy_row(v, &b[(k + dk) * p..(k + dk) * p + p], out_row);
                        }
                    }
                    k += UK;
                }
                for k in k..kend {
                    saxpy_row(a_row[k], &b[k * p..k * p + p], out_row);
                }
            }
        }
    }
}

/// `aᵀ · b` into `out_chunk` (output rows `row0 ..`, i.e. columns of `a`).
/// Streams `a` and `b` [`UK`] rows at a time (fully sequential access, no
/// transpose materialized) and scatters fused quad updates into the chunk's
/// rows: when the quad's four `a` values for an output row are all nonzero,
/// the four rank-1 contributions run in one pass over that row, quartering
/// the output-row traffic; otherwise the zero-skipping scalar updates run.
/// Either way each element's additions happen in ascending-`k` order —
/// bit-identical to the naive kernel.
fn tn_chunk(
    a: &[f32],
    m: usize,
    n: usize,
    b: &[f32],
    p: usize,
    out_chunk: &mut [f32],
    row0: usize,
) {
    let rows = out_chunk.len() / p.max(1);
    let mut k = 0;
    while k + UK <= m {
        let a0 = &a[k * n..k * n + n];
        let a1 = &a[(k + 1) * n..(k + 1) * n + n];
        let a2 = &a[(k + 2) * n..(k + 2) * n + n];
        let a3 = &a[(k + 3) * n..(k + 3) * n + n];
        let b0 = &b[k * p..k * p + p];
        let b1 = &b[(k + 1) * p..(k + 1) * p + p];
        let b2 = &b[(k + 2) * p..(k + 2) * p + p];
        let b3 = &b[(k + 3) * p..(k + 3) * p + p];
        for r in 0..rows {
            let i = row0 + r;
            let av = [a0[i], a1[i], a2[i], a3[i]];
            let out_row = &mut out_chunk[r * p..(r + 1) * p];
            if av[0] != 0.0 && av[1] != 0.0 && av[2] != 0.0 && av[3] != 0.0 {
                for j in 0..p {
                    let mut o = out_row[j];
                    o += av[0] * b0[j];
                    o += av[1] * b1[j];
                    o += av[2] * b2[j];
                    o += av[3] * b3[j];
                    out_row[j] = o;
                }
            } else {
                saxpy_row(av[0], b0, out_row);
                saxpy_row(av[1], b1, out_row);
                saxpy_row(av[2], b2, out_row);
                saxpy_row(av[3], b3, out_row);
            }
        }
        k += UK;
    }
    for k in k..m {
        let a_row = &a[k * n..k * n + n];
        let b_row = &b[k * p..k * p + p];
        for r in 0..rows {
            saxpy_row(a_row[row0 + r], b_row, &mut out_chunk[r * p..(r + 1) * p]);
        }
    }
}

/// Computes output rows `r..r+MR`, cols `j..j+NR` of the `a · bᵀ` chunk:
/// 16 dot products sharing 4 streams of `a` and 4 streams of `b`.
///
/// The flat scalar parameter list is deliberate: the microkernel is
/// monomorphic and `inline(always)`, and bundling the operands into a
/// struct buys nothing but indirection here.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn nt_tile(
    a: &[f32],
    n: usize,
    b: &[f32],
    p: usize,
    out_chunk: &mut [f32],
    row0: usize,
    r: usize,
    j: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let abase = [
        (row0 + r) * n,
        (row0 + r + 1) * n,
        (row0 + r + 2) * n,
        (row0 + r + 3) * n,
    ];
    let bbase = [j * n, (j + 1) * n, (j + 2) * n, (j + 3) * n];
    for k in 0..n {
        let av = [
            a[abase[0] + k],
            a[abase[1] + k],
            a[abase[2] + k],
            a[abase[3] + k],
        ];
        let bv = [
            b[bbase[0] + k],
            b[bbase[1] + k],
            b[bbase[2] + k],
            b[bbase[3] + k],
        ];
        for ri in 0..MR {
            acc[ri][0] += av[ri] * bv[0];
            acc[ri][1] += av[ri] * bv[1];
            acc[ri][2] += av[ri] * bv[2];
            acc[ri][3] += av[ri] * bv[3];
        }
    }
    for (ri, accr) in acc.iter().enumerate() {
        let o = (r + ri) * p + j;
        out_chunk[o..o + NR].copy_from_slice(accr);
    }
}

/// Scalar dot product for `a · bᵀ` tile remainders — the naive chain.
/// (Same flat-parameter rationale as [`nt_tile`].)
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn nt_elem(
    a: &[f32],
    n: usize,
    b: &[f32],
    p: usize,
    out_chunk: &mut [f32],
    row0: usize,
    r: usize,
    j: usize,
) {
    let a_row = &a[(row0 + r) * n..(row0 + r) * n + n];
    let b_row = &b[j * n..j * n + n];
    let mut acc = 0.0f32;
    for k in 0..n {
        acc += a_row[k] * b_row[k];
    }
    out_chunk[r * p + j] = acc;
}

/// `a · bᵀ` into `out_chunk` (rows `row0 ..`): blocked dot products with a
/// 4×4 register tile; one single-chain accumulator per element
/// (bit-identical to the naive loop).
fn nt_chunk(a: &[f32], n: usize, b: &[f32], p: usize, out_chunk: &mut [f32], row0: usize) {
    let rows = out_chunk.len() / p.max(1);
    for rr in (0..rows).step_by(MC) {
        let rend = (rr + MC).min(rows);
        for jj in (0..p).step_by(MC) {
            let jend = (jj + MC).min(p);
            let jt = jj + (jend - jj) - (jend - jj) % NR;
            let mut r = rr;
            while r + MR <= rend {
                let mut j = jj;
                while j < jt {
                    nt_tile(a, n, b, p, out_chunk, row0, r, j);
                    j += NR;
                }
                for j in jt..jend {
                    for ri in 0..MR {
                        nt_elem(a, n, b, p, out_chunk, row0, r + ri, j);
                    }
                }
                r += MR;
            }
            for rt in r..rend {
                for j in jj..jend {
                    nt_elem(a, n, b, p, out_chunk, row0, rt, j);
                }
            }
        }
    }
}

/// Serial cache-blocked, register-tiled kernels; the single-thread fallback
/// of [`ParallelBackend`] and the default when the `parallel` feature is
/// off.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

impl Backend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        check_out(out, m, p);
        out.fill_zero();
        nn_chunk(a.data(), n, b.data(), p, out.data_mut(), 0);
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        check_out(out, n, p);
        out.fill_zero();
        tn_chunk(a.data(), m, n, b.data(), p, out.data_mut(), 0);
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.rows());
        check_out(out, m, p);
        // No zeroing pass: nt_chunk assigns every output element.
        nt_chunk(a.data(), n, b.data(), p, out.data_mut(), 0);
    }
}

#[cfg(feature = "parallel")]
thread_local! {
    static SERIAL_ONLY: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with [`ParallelBackend`] pinned to its serial blocked kernels
/// on the current thread.
///
/// For callers that already fan out at a coarser grain (e.g. chunk-parallel
/// batched inference): nesting thread spawns inside worker threads
/// oversubscribes the machine without changing any result, so workers wrap
/// their inner loop in this guard. Results are unaffected — serial and
/// parallel kernels are bit-identical by contract.
#[cfg(feature = "parallel")]
pub fn with_serial_backend<T>(f: impl FnOnce() -> T) -> T {
    let prev = SERIAL_ONLY.with(|c| c.replace(true));
    let out = f();
    SERIAL_ONLY.with(|c| c.set(prev));
    out
}

/// No-`parallel` builds are always serial; the guard is a plain call.
#[cfg(not(feature = "parallel"))]
pub fn with_serial_backend<T>(f: impl FnOnce() -> T) -> T {
    f()
}

/// Whether [`with_serial_backend`] has pinned the current thread to the
/// serial kernels. Coarse-grained fan-outs (chunk-parallel inference,
/// thread-per-shard scatter) consult this so a caller that pinned serial
/// execution — a worker thread, or an allocation-count harness — is obeyed
/// at every grain, not just inside the matmul backend.
#[cfg(feature = "parallel")]
pub fn serial_pinned() -> bool {
    SERIAL_ONLY.with(|c| c.get())
}

/// No-`parallel` builds are always serial.
#[cfg(not(feature = "parallel"))]
pub fn serial_pinned() -> bool {
    true
}

/// Worker-thread count for [`ParallelBackend`]: the machine's available
/// parallelism, resolved once. The `NN_THREADS` environment variable
/// overrides it (useful for pinning benchmark comparisons and for
/// exercising the threaded code path on small machines).
#[cfg(feature = "parallel")]
pub fn num_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("NN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Splits `out`'s rows into contiguous per-thread chunks and runs `kernel`
/// on each chunk in a scoped thread (`kernel(chunk, row0)` receives the
/// chunk's backing slice and the absolute index of its first row). Chunks
/// are disjoint, so no synchronization is needed beyond the scope join.
///
/// Shared by the matmul kernels and by coarser-grained callers (e.g.
/// `splash::capture::encodings`) so every fan-out in the workspace honors
/// the same [`num_threads`] / `NN_THREADS` policy.
#[cfg(feature = "parallel")]
pub fn par_rows(out: &mut Matrix, kernel: impl Fn(&mut [f32], usize) + Sync) {
    par_rows_threads(out, num_threads(), kernel);
}

/// [`par_rows`] with an explicit thread count — the testable seam: unit
/// tests force uneven thread/row splits regardless of the host's cores.
#[cfg(feature = "parallel")]
fn par_rows_threads(out: &mut Matrix, threads: usize, kernel: impl Fn(&mut [f32], usize) + Sync) {
    let rows = out.rows();
    let p = out.cols();
    let threads = threads.min(rows).max(1);
    if threads <= 1 || p == 0 {
        kernel(out.data_mut(), 0);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in out.data_mut().chunks_mut(chunk_rows * p).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(chunk, ci * chunk_rows));
        }
    });
}

/// The blocked, register-tiled kernels partitioned over output rows across
/// scoped threads. Small products (fewer than ~2¹⁸ multiply-adds) run
/// serially, where the blocked kernel already wins; either way the bits are
/// identical.
#[cfg(feature = "parallel")]
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelBackend;

#[cfg(feature = "parallel")]
impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul_into(a, b, out);
        }
        check_out(out, m, p);
        out.fill_zero();
        par_rows(out, |chunk, row0| {
            nn_chunk(a.data(), n, b.data(), p, chunk, row0)
        });
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.cols());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul_tn_into(a, b, out);
        }
        check_out(out, n, p);
        out.fill_zero();
        par_rows(out, |chunk, row0| {
            tn_chunk(a.data(), m, n, b.data(), p, chunk, row0)
        });
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        let (m, n, p) = (a.rows(), a.cols(), b.rows());
        if m * n * p < PAR_MIN_FLOPS || SERIAL_ONLY.with(|c| c.get()) {
            return BlockedBackend.matmul_nt_into(a, b, out);
        }
        check_out(out, m, p);
        // No zeroing pass: nt_chunk assigns every output element.
        par_rows(out, |chunk, row0| {
            nt_chunk(a.data(), n, b.data(), p, chunk, row0)
        });
    }
}

/// The backend behind [`Matrix::matmul`] and friends: [`ParallelBackend`]
/// when the `parallel` feature is on (the default), [`BlockedBackend`]
/// otherwise.
pub fn default_backend() -> &'static dyn Backend {
    #[cfg(feature = "parallel")]
    {
        static BACKEND: ParallelBackend = ParallelBackend;
        &BACKEND
    }
    #[cfg(not(feature = "parallel"))]
    {
        static BACKEND: BlockedBackend = BlockedBackend;
        &BACKEND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn cases() -> Vec<(Matrix, Matrix, Matrix)> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut out = Vec::new();
        for &(m, n, p) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (7, 5, 9),
            (16, 16, 16),
            (33, 65, 17),
            (70, 129, 48),
            // Tile-remainder shapes: every combination of rows/cols mod 4,
            // tall/skinny, single-row and single-column outputs.
            (4, 4, 4),
            (5, 6, 7),
            (6, 3, 5),
            (3, 2, 3),
            (1, 40, 1),
            (1, 7, 23),
            (41, 3, 1),
            (97, 2, 2),
            (2, 2, 97),
            (39, 257, 6),
        ] {
            out.push((
                randn_matrix(m, n, 1.0, &mut rng),
                randn_matrix(n, p, 1.0, &mut rng),
                randn_matrix(m, p, 1.0, &mut rng),
            ));
        }
        out
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (a, b, _) in cases() {
            assert_eq!(
                NaiveBackend.matmul(&a, &b).data(),
                BlockedBackend.matmul(&a, &b).data()
            );
        }
    }

    #[test]
    fn blocked_tn_nt_match_naive_bitwise() {
        for (a, b, c) in cases() {
            // aᵀ·c : (m,n)ᵀ·(m,p); a·bᵀ needs matching cols: use (m,n)·(p,n).
            assert_eq!(
                NaiveBackend.matmul_tn(&a, &c).data(),
                BlockedBackend.matmul_tn(&a, &c).data()
            );
            let bt = b.transpose();
            assert_eq!(
                NaiveBackend.matmul_nt(&a, &bt).data(),
                BlockedBackend.matmul_nt(&a, &bt).data()
            );
        }
    }

    /// Exact zeros in `a` must take the skip path in the tiled kernels and
    /// still match the reference bit-for-bit (0·x can be −0.0, so skipping
    /// vs. adding is an observable difference the contract forbids).
    #[test]
    fn tiled_kernels_preserve_zero_skip_semantics() {
        let mut rng = StdRng::seed_from_u64(123);
        for &(m, n, p) in &[(9usize, 10usize, 11usize), (4, 4, 4), (13, 5, 6)] {
            let mut a = randn_matrix(m, n, 1.0, &mut rng);
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
            let b = randn_matrix(n, p, 1.0, &mut rng);
            assert_eq!(
                NaiveBackend.matmul(&a, &b).data(),
                BlockedBackend.matmul(&a, &b).data()
            );
            let c = randn_matrix(m, p, 1.0, &mut rng);
            assert_eq!(
                NaiveBackend.matmul_tn(&a, &c).data(),
                BlockedBackend.matmul_tn(&a, &c).data()
            );
        }
    }

    /// The `_into` forms must overwrite whatever garbage the caller's
    /// buffer holds and match the allocating forms exactly.
    #[test]
    fn into_forms_overwrite_dirty_buffers() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = randn_matrix(10, 6, 1.0, &mut rng);
        let b = randn_matrix(6, 9, 1.0, &mut rng);
        for backend in [&NaiveBackend as &dyn Backend, &BlockedBackend] {
            let mut out = Matrix::filled(10, 9, f32::NAN);
            backend.matmul_into(&a, &b, &mut out);
            assert_eq!(out.data(), backend.matmul(&a, &b).data());

            let c = randn_matrix(10, 9, 1.0, &mut rng);
            let mut out = Matrix::filled(6, 9, f32::NAN);
            backend.matmul_tn_into(&a, &c, &mut out);
            assert_eq!(out.data(), backend.matmul_tn(&a, &c).data());

            let d = randn_matrix(9, 6, 1.0, &mut rng);
            let mut out = Matrix::filled(10, 9, f32::NAN);
            backend.matmul_nt_into(&a, &d, &mut out);
            assert_eq!(out.data(), backend.matmul_nt(&a, &d).data());
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn into_rejects_misshapen_output() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 5);
        BlockedBackend.matmul_into(&a, &b, &mut out);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Big enough to cross PAR_MIN_FLOPS and exercise real threading.
        let a = randn_matrix(130, 90, 1.0, &mut rng);
        let b = randn_matrix(90, 110, 1.0, &mut rng);
        assert_eq!(
            NaiveBackend.matmul(&a, &b).data(),
            ParallelBackend.matmul(&a, &b).data()
        );
        let c = randn_matrix(130, 110, 1.0, &mut rng);
        assert_eq!(
            NaiveBackend.matmul_tn(&a, &c).data(),
            ParallelBackend.matmul_tn(&a, &c).data()
        );
        let bt = b.transpose();
        assert_eq!(
            NaiveBackend.matmul_nt(&a, &bt).data(),
            ParallelBackend.matmul_nt(&a, &bt).data()
        );
    }

    /// Forces the scoped-thread chunking (uneven splits included) no matter
    /// how many cores the host has: the row0/chunk arithmetic must place
    /// every output row exactly where the serial kernel would.
    #[cfg(feature = "parallel")]
    #[test]
    fn forced_thread_counts_match_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let (m, n, p) = (37usize, 29usize, 23usize); // awkward, non-divisible
        let a = randn_matrix(m, n, 1.0, &mut rng);
        let b = randn_matrix(n, p, 1.0, &mut rng);
        let reference = NaiveBackend.matmul(&a, &b);
        for threads in [2usize, 3, 5, 16, 64] {
            let mut out = Matrix::zeros(m, p);
            super::par_rows_threads(&mut out, threads, |chunk, row0| {
                super::nn_chunk(a.data(), n, b.data(), p, chunk, row0)
            });
            assert_eq!(reference.data(), out.data(), "threads = {threads}");
        }
    }

    #[test]
    fn zero_sized_products() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(BlockedBackend.matmul(&a, &b).shape(), (0, 3));
        let e = Matrix::zeros(3, 0);
        let f = Matrix::zeros(0, 2);
        assert_eq!(BlockedBackend.matmul(&e, &f).shape(), (3, 2));
    }
}
