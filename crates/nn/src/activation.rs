//! Element-wise activations with functional forward/backward.

use crate::matrix::Matrix;

/// Supported element-wise activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op), useful as a final-layer "activation".
    Identity,
}

/// Backward cache for activations: the forward *output* (sufficient for all
/// supported functions). `Default` yields an empty cache that
/// [`Activation::forward_inplace`] fills and reuses across steps.
#[derive(Debug, Clone, Default)]
pub struct ActCache {
    output: Matrix,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(self, x: &Matrix) -> (Matrix, ActCache) {
        let y = self.infer(x);
        (y.clone(), ActCache { output: y })
    }

    /// Applies the activation to `m` in place, snapshotting the output into
    /// the reusable `cache`. Allocation-free after warm-up; bit-identical
    /// to [`Activation::forward`].
    pub fn forward_inplace(self, m: &mut Matrix, cache: &mut ActCache) {
        self.infer_inplace(m);
        cache.output.copy_from(m);
    }

    /// Inference-only application.
    pub fn infer(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => x.map(|a| a.max(0.0)),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Sigmoid => x.map(sigmoid),
            Activation::Identity => x.clone(),
        }
    }

    /// [`Activation::infer`] in place (no allocation).
    pub fn infer_inplace(self, m: &mut Matrix) {
        let apply = |f: fn(f32) -> f32, m: &mut Matrix| {
            for v in m.data_mut() {
                *v = f(*v);
            }
        };
        match self {
            Activation::Relu => apply(|a| a.max(0.0), m),
            Activation::Tanh => apply(f32::tanh, m),
            Activation::Sigmoid => apply(sigmoid, m),
            Activation::Identity => {}
        }
    }

    /// Backward pass given the upstream gradient `dy`.
    pub fn backward(self, cache: &ActCache, dy: &Matrix) -> Matrix {
        let mut dx = dy.clone();
        self.backward_inplace(cache, &mut dx);
        dx
    }

    /// [`Activation::backward`] in place on the upstream gradient: `dy` is
    /// rewritten into the input gradient (no allocation; bit-identical to
    /// the allocating form).
    pub fn backward_inplace(self, cache: &ActCache, dy: &mut Matrix) {
        assert_eq!(cache.output.shape(), dy.shape(), "activation cache/grad shape mismatch");
        let apply = |f: fn(f32, f32) -> f32, cache: &ActCache, dy: &mut Matrix| {
            for (d, &y) in dy.data_mut().iter_mut().zip(cache.output.data()) {
                *d = f(y, *d);
            }
        };
        match self {
            Activation::Relu => apply(|y, d| if y > 0.0 { d } else { 0.0 }, cache, dy),
            Activation::Tanh => apply(|y, d| d * (1.0 - y * y), cache, dy),
            Activation::Sigmoid => apply(|y, d| d * y * (1.0 - y), cache, dy),
            Activation::Identity => {}
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::test_util::probe_coefficients;
    use rand::{rngs::StdRng, SeedableRng};

    fn numeric_check(act: Activation) {
        let mut rng = StdRng::seed_from_u64(9);
        let x = randn_matrix(3, 4, 1.0, &mut rng);
        let (y, cache) = act.forward(&x);
        let coef = probe_coefficients(y.rows(), y.cols());
        let dx = act.backward(&cache, &coef);
        let eps = 5e-3f32;
        for idx in 0..x.len() {
            // ReLU kink: skip elements too close to 0 where FD is invalid.
            if act == Activation::Relu && x.data()[idx].abs() < 2.0 * eps {
                continue;
            }
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = act.infer(&xp).hadamard(&coef).sum();
            let lm = act.infer(&xm).hadamard(&coef).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[idx];
            assert!(
                (analytic - numeric).abs() < 2e-2 * 1.0f32.max(analytic.abs()),
                "{act:?}[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn relu_gradient() {
        numeric_check(Activation::Relu);
    }

    #[test]
    fn tanh_gradient() {
        numeric_check(Activation::Tanh);
    }

    #[test]
    fn sigmoid_gradient() {
        numeric_check(Activation::Sigmoid);
    }

    #[test]
    fn identity_gradient() {
        numeric_check(Activation::Identity);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-8);
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn relu_clamps() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        assert_eq!(Activation::Relu.infer(&x).data(), &[0.0, 0.0, 2.0]);
    }
}
