//! Finite-difference gradient checking used by this crate's layer tests and
//! by model tests in dependent crates.

use crate::matrix::Matrix;
use crate::param::Parameterized;

/// Deterministic pseudo-random coefficients in roughly `[-1, 1]`, used as the
/// upstream gradient so the scalar test loss `Σ coef ⊙ y` probes every output
/// element with a distinct weight.
pub fn probe_coefficients(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17 + 1) as f32 * 0.7).sin())
}

/// Verifies a layer's backward pass against central finite differences.
///
/// `forward` must be a pure function of `(layer, x)`; `backward` must
/// accumulate parameter gradients and return `dx`. Both the input gradient
/// and every parameter gradient are checked element-wise with tolerance
/// `tol` relative to the gradient magnitude.
pub fn grad_check<L, C>(
    mut layer: L,
    x: Matrix,
    forward: impl Fn(&L, &Matrix) -> (Matrix, C),
    backward: impl Fn(&mut L, &C, &Matrix) -> Matrix,
    tol: f32,
) where
    L: Parameterized,
{
    let (y0, cache) = forward(&layer, &x);
    let coef = probe_coefficients(y0.rows(), y0.cols());
    let loss_of = |y: &Matrix| y.hadamard(&coef).sum();

    layer.zero_grad();
    let dx = backward(&mut layer, &cache, &coef);
    let analytic_param_grads: Vec<Matrix> =
        layer.params_mut().iter().map(|p| p.grad.clone()).collect();

    let eps = 5e-3f32;
    let assert_close = |analytic: f32, numeric: f32, what: &str| {
        let scale = 1.0f32.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() <= tol * scale,
            "{what}: analytic {analytic} vs numeric {numeric}"
        );
    };

    // Input gradient.
    for idx in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let numeric = (loss_of(&forward(&layer, &xp).0) - loss_of(&forward(&layer, &xm).0))
            / (2.0 * eps);
        assert_close(dx.data()[idx], numeric, &format!("dx[{idx}]"));
    }

    // Parameter gradients.
    let n_params = analytic_param_grads.len();
    for pi in 0..n_params {
        let n_elems = analytic_param_grads[pi].len();
        for ei in 0..n_elems {
            let orig = {
                let mut ps = layer.params_mut();
                let v = ps[pi].value.data_mut();
                let orig = v[ei];
                v[ei] = orig + eps;
                orig
            };
            let lp = loss_of(&forward(&layer, &x).0);
            {
                let mut ps = layer.params_mut();
                ps[pi].value.data_mut()[ei] = orig - eps;
            }
            let lm = loss_of(&forward(&layer, &x).0);
            {
                let mut ps = layer.params_mut();
                ps[pi].value.data_mut()[ei] = orig;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            assert_close(
                analytic_param_grads[pi].data()[ei],
                numeric,
                &format!("param[{pi}][{ei}]"),
            );
        }
    }
}
