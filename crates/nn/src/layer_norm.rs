//! Layer normalization (Ba et al. 2016) over the last dimension.
//!
//! The SLIM model applies LayerNorm to its aggregated representation and to
//! the skip-connection branch (paper Eq. 18); it is also part of the
//! transformer and mixer blocks used by the baselines.

use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};

/// Per-row layer normalization with learnable gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Learnable gain `γ`, shape `(1, dim)`.
    pub gain: Param,
    /// Learnable bias `β`, shape `(1, dim)`.
    pub bias: Param,
    eps: f32,
}

/// Backward cache: normalized activations and per-row inverse std.
///
/// `Default` yields an empty cache that [`LayerNorm::forward_into`] sizes
/// and reuses across steps.
#[derive(Debug, Clone, Default)]
pub struct LayerNormCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// LayerNorm over `dim` features (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        Self {
            gain: Param::new(Matrix::filled(1, dim, 1.0)),
            bias: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalized feature dimension.
    pub fn dim(&self) -> usize {
        self.gain.value.cols()
    }

    /// Forward pass `(B, dim) → (B, dim)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        let mut cache = LayerNormCache::default();
        let mut y = Matrix::default();
        self.forward_into(x, &mut y, &mut cache);
        (y, cache)
    }

    /// Per-row normalization statistics — the single home of the LayerNorm
    /// numerics, so the cached and cache-free paths cannot diverge.
    #[inline]
    fn row_stats(&self, row: &[f32]) -> (f32, f32) {
        let cols = row.len() as f32;
        let mean = row.iter().sum::<f32>() / cols;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols;
        (mean, 1.0 / (var + self.eps).sqrt())
    }

    /// [`LayerNorm::forward`] into a caller-owned output with a reusable
    /// cache (allocation-free after warm-up, bit-identical results).
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, cache: &mut LayerNormCache) {
        let (rows, cols) = x.shape();
        assert_eq!(cols, self.dim(), "LayerNorm dimension mismatch");
        cache.xhat.resize_zeroed(rows, cols);
        cache.inv_std.clear();
        out.resize_zeroed(rows, cols);
        let g = self.gain.value.row(0);
        let b = self.bias.value.row(0);
        for i in 0..rows {
            let row = x.row(i);
            let (mean, istd) = self.row_stats(row);
            cache.inv_std.push(istd);
            for j in 0..cols {
                let xh = (row[j] - mean) * istd;
                cache.xhat.set(i, j, xh);
                out.set(i, j, g[j] * xh + b[j]);
            }
        }
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// [`LayerNorm::infer`] into a caller-owned buffer, skipping the cache
    /// (allocation-free after warm-up, bit-identical to the forward pass —
    /// both paths share the private `row_stats` numerics).
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        let (rows, cols) = x.shape();
        assert_eq!(cols, self.dim(), "LayerNorm dimension mismatch");
        out.resize_zeroed(rows, cols);
        let g = self.gain.value.row(0);
        let b = self.bias.value.row(0);
        for i in 0..rows {
            let row = x.row(i);
            let (mean, istd) = self.row_stats(row);
            for j in 0..cols {
                let xh = (row[j] - mean) * istd;
                out.set(i, j, g[j] * xh + b[j]);
            }
        }
    }

    /// Backward pass: accumulates `dγ`, `dβ` and returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(cache, dy, &mut dx);
        dx
    }

    /// [`LayerNorm::backward`] into a caller-owned `dx` (allocation-free
    /// after warm-up, bit-identical results).
    pub fn backward_into(&mut self, cache: &LayerNormCache, dy: &Matrix, dx: &mut Matrix) {
        let (rows, cols) = dy.shape();
        let g = self.gain.value.row(0);
        dx.resize_zeroed(rows, cols);
        {
            let dgain = self.gain.grad.row_mut(0);
            for i in 0..rows {
                for (j, dg) in dgain.iter_mut().enumerate() {
                    *dg += dy.get(i, j) * cache.xhat.get(i, j);
                }
            }
        }
        {
            let dbias = self.bias.grad.row_mut(0);
            for i in 0..rows {
                for (j, db) in dbias.iter_mut().enumerate() {
                    *db += dy.get(i, j);
                }
            }
        }
        let n = cols as f32;
        for i in 0..rows {
            // dxhat = dy * gain
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for (j, &gj) in g.iter().enumerate() {
                let dxh = dy.get(i, j) * gj;
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * cache.xhat.get(i, j);
            }
            let istd = cache.inv_std[i];
            for (j, &gj) in g.iter().enumerate() {
                let dxh = dy.get(i, j) * gj;
                let xh = cache.xhat.get(i, j);
                dx.set(i, j, istd * (dxh - sum_dxhat / n - xh * sum_dxhat_xhat / n));
            }
        }
    }
}

impl LayerNorm {
    /// Overwrites the gain/bias *values* with `other`'s (gradients and
    /// optimizer moments untouched), reusing the existing buffers —
    /// allocation-free. See [`crate::Linear::copy_weights_from`].
    pub fn copy_weights_from(&mut self, other: &LayerNorm) {
        self.gain.value.copy_from(&other.gain.value);
        self.bias.value.copy_from(&other.bias.value);
    }
}

impl Parameterized for LayerNorm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }

    fn num_params(&self) -> usize {
        self.gain.len() + self.bias.len()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gain);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn output_rows_are_normalized() {
        let ln = LayerNorm::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let x = randn_matrix(4, 8, 3.0, &mut rng).map(|v| v + 10.0);
        let (y, _) = ln.forward(&x);
        for i in 0..4 {
            let row = y.row(i);
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {i} var {var}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ln = LayerNorm::new(5);
        // Non-trivial gain/bias so their gradients are exercised.
        ln.gain.value = randn_matrix(1, 5, 1.0, &mut rng).map(|v| v + 1.0);
        ln.bias.value = randn_matrix(1, 5, 0.5, &mut rng);
        let x = randn_matrix(3, 5, 2.0, &mut rng);
        grad_check(
            ln,
            x,
            |l, x| l.forward(x),
            |l, c, dy| l.backward(c, dy),
            3e-2,
        );
    }

    #[test]
    fn scale_invariance() {
        // LayerNorm output is invariant to a positive rescaling of its input.
        let ln = LayerNorm::new(6);
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(2, 6, 1.0, &mut rng);
        let (y1, _) = ln.forward(&x);
        let (y2, _) = ln.forward(&x.scale(7.5));
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
