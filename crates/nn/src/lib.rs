//! Minimal neural-network substrate with hand-written backpropagation.
//!
//! The SPLASH paper and its baselines need MLPs, layer normalization, GRU
//! cells, multi-head (cross- and self-) attention, MLP-mixer blocks, a
//! learnable frequency filter, and fixed/learnable time encodings — all
//! trainable with Adam. No ML framework is available offline, so this crate
//! implements exactly that surface on top of dense `f32` matrices.
//!
//! Layers follow a *functional* convention: `forward(&self, …) -> (output,
//! cache)` and `backward(&mut self, &cache, dy) -> dinput`, with parameter
//! gradients accumulated inside each layer's [`param::Param`]s. This allows
//! a layer to be applied many times per training step (e.g. a message MLP
//! applied to every remembered edge) with correct gradient accumulation.
//! Every layer's backward pass is verified against central finite
//! differences in its unit tests.
//!
//! Execution is pluggable: every dense product dispatches through the
//! [`backend`] seam ([`Matrix::matmul`] → [`default_backend`]), whose
//! implementations — naive reference loops, cache-blocked serial kernels,
//! and a row-partitioned parallel path (feature `parallel`, on by
//! default) — are **bit-identical** by contract. Training and inference
//! therefore stay deterministic for a fixed seed regardless of thread
//! count; see the [`backend`] module docs for how that is guaranteed.
//!
//! ```
//! use nn::{Matrix, BlockedBackend, NaiveBackend};
//!
//! let a = Matrix::from_fn(64, 32, |i, j| (i + j) as f32 * 0.01);
//! let b = Matrix::from_fn(32, 48, |i, j| (i * j) as f32 * 0.001);
//! // Same bits from every backend, and from the default path:
//! assert_eq!(a.matmul(&b).data(), a.matmul_with(&b, &NaiveBackend).data());
//! assert_eq!(a.matmul(&b).data(), a.matmul_with(&b, &BlockedBackend).data());
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod attention;
pub mod backend;
pub mod dft;
pub mod gru;
pub mod init;
pub mod layer_norm;
pub mod linear;
pub mod loss;
pub mod matrix;
pub mod mixer;
pub mod mlp;
pub mod param;
pub mod svd;
pub mod test_util;
pub mod time_encode;
pub mod workspace;

pub use activation::{sigmoid, ActCache, Activation};
#[cfg(feature = "parallel")]
pub use backend::ParallelBackend;
pub use backend::{default_backend, with_serial_backend, Backend, BlockedBackend, NaiveBackend};
pub use attention::{
    CrossAttention, CrossAttentionCache, SelfAttention, SelfAttentionCache, TransformerBlock,
    TransformerBlockCache,
};
pub use dft::{FrequencyFilter, FrequencyFilterCache};
pub use gru::{GruCache, GruCell};
pub use init::{he, randn, randn_matrix, xavier};
pub use layer_norm::{LayerNorm, LayerNormCache};
pub use linear::{Linear, LinearCache};
pub use loss::{
    bce_with_logits, log_softmax, mse, soft_cross_entropy, soft_cross_entropy_into, softmax,
    softmax_cross_entropy, softmax_cross_entropy_into,
};
pub use matrix::Matrix;
pub use mixer::{MixerBlock, MixerCache};
pub use mlp::{Mlp, MlpCache};
pub use param::{clip_global_norm, Adam, Param, Parameterized};
pub use svd::{truncated_svd, TruncatedSvd};
pub use time_encode::{
    DegreeEncode, FixedTimeEncode, LearnableTimeEncode, TimeEncodeCache,
};
pub use workspace::Workspace;
