//! Fully connected layer with functional forward/backward.
//!
//! Layers in this crate are *functional*: `forward` returns the output plus a
//! cache, and `backward` consumes that cache. This lets one layer be applied
//! several times inside a single training step (e.g. SLIM's message MLP runs
//! over every remembered edge of every query) with gradients accumulating
//! correctly across applications.

use rand::Rng;

use crate::init::xavier;
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};
use crate::workspace::Workspace;

/// Affine map `y = x·W + b` with `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix.
    pub w: Param,
    /// Bias row.
    pub b: Param,
}

/// Backward cache for [`Linear`]: the forward input.
///
/// `Default` yields an empty cache whose buffer is filled (and reused) by
/// [`Linear::forward_into`] — construct it once and carry it across steps.
#[derive(Debug, Clone, Default)]
pub struct LinearCache {
    input: Matrix,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w: Param::new(xavier(in_dim, out_dim, rng)),
            b: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass over a batch `(B, in) → (B, out)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCache) {
        let mut cache = LinearCache::default();
        let mut y = Matrix::default();
        self.forward_into(x, &mut y, &mut cache);
        (y, cache)
    }

    /// [`Linear::forward`] into caller-owned buffers: `out` is resized to
    /// `(B, out_dim)` and overwritten, and the cache's input snapshot
    /// reuses its previous allocation. Allocation-free once `out` and
    /// `cache` have warmed up to the batch shape. Bit-identical to
    /// [`Linear::forward`].
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, cache: &mut LinearCache) {
        self.infer_into(x, out);
        cache.input.copy_from(x);
    }

    /// Inference-only forward without caching.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::default();
        self.infer_into(x, &mut y);
        y
    }

    /// [`Linear::infer`] into a caller-owned buffer (resized and
    /// overwritten; allocation-free after warm-up).
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w.value, out);
        out.add_row_broadcast_assign(self.b.value.row(0));
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(cache, dy, &mut dx, &mut Workspace::new());
        dx
    }

    /// [`Linear::backward`] into a caller-owned `dx` buffer, drawing its
    /// gradient temporaries from `ws`. Allocation-free once `dx` and the
    /// workspace have warmed up; bit-identical to [`Linear::backward`]
    /// (gradient products are computed in their own zeroed buffers and then
    /// added to the parameter gradients, preserving the accumulation
    /// chains).
    pub fn backward_into(
        &mut self,
        cache: &LinearCache,
        dy: &Matrix,
        dx: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let mut dw = ws.take(self.w.value.rows(), self.w.value.cols());
        cache.input.matmul_tn_into(dy, &mut dw);
        self.w.grad.add_assign(&dw);
        ws.give(dw);
        let mut db = ws.take(1, dy.cols());
        dy.col_sums_into(db.row_mut(0));
        self.b.grad.add_assign(&db);
        ws.give(db);
        dy.matmul_nt_into(&self.w.value, dx);
    }
}

impl Linear {
    /// Overwrites this layer's weight and bias *values* with `other`'s
    /// (gradients and optimizer moments untouched), reusing the existing
    /// buffers — allocation-free between same-shape layers. This is the
    /// primitive behind atomic weight publication in serving stacks.
    pub fn copy_weights_from(&mut self, other: &Linear) {
        self.w.value.copy_from(&other.w.value);
        self.b.value.copy_from(&other.b.value);
    }
}

impl Parameterized for Linear {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::grad_check;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(3, 2, &mut rng);
        layer.w.value = Matrix::zeros(3, 2);
        layer.b.value = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let x = Matrix::filled(4, 3, 5.0);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.row(2), &[1.0, -1.0]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(5, 4, &mut rng);
        let x = crate::init::randn_matrix(2, 5, 1.0, &mut rng);
        let (y, _) = layer.forward(&x);
        assert_eq!(y, layer.infer(&x));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = crate::init::randn_matrix(5, 4, 1.0, &mut rng);
        grad_check(
            layer,
            x,
            |l, x| l.forward(x),
            |l, cache, dy| l.backward(cache, dy),
            2e-2,
        );
    }

    #[test]
    fn grad_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let dy = Matrix::filled(1, 2, 1.0);
        let (_, c1) = layer.forward(&x);
        let (_, c2) = layer.forward(&x);
        layer.backward(&c1, &dy);
        let g1 = layer.w.grad.clone();
        layer.backward(&c2, &dy);
        assert_eq!(layer.w.grad, g1.scale(2.0));
    }

    #[test]
    fn num_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(7, 5, &mut rng);
        assert_eq!(Parameterized::num_params(&layer), 7 * 5 + 5);
    }
}
