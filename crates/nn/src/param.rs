//! Trainable parameters and the Adam optimizer.
//!
//! Each [`Param`] carries its value, its accumulated gradient, and its Adam
//! moment estimates, so optimizers stay stateless apart from hyperparameters
//! and the global step counter.

use crate::matrix::Matrix;

/// One trainable tensor (weight matrix or bias row) with gradient and Adam
/// moments.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient; layers add into this during backward passes.
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wraps an initial value as a trainable parameter.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// One Adam update with bias correction at global step `t` (1-based).
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u64) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        let value = self.value.data_mut();
        let grad = self.grad.data();
        let m = self.m.data_mut();
        let v = self.v.data_mut();
        for i in 0..value.len() {
            let g = grad[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Read-only view of the Adam moment estimates `(m, v)` — what a
    /// checkpoint must carry so a resumed optimizer is bit-identical to one
    /// that never stopped.
    pub fn adam_state(&self) -> (&Matrix, &Matrix) {
        (&self.m, &self.v)
    }

    /// Mutable view of the Adam moment estimates `(m, v)`, for restoring a
    /// checkpointed optimizer. Shapes must stay equal to the value's shape.
    pub fn adam_state_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.m, &mut self.v)
    }

    /// Plain SGD update.
    pub fn sgd_step(&mut self, lr: f32) {
        let value = self.value.data_mut();
        let grad = self.grad.data();
        for i in 0..value.len() {
            value[i] -= lr * grad[i];
        }
    }
}

/// A layer or model exposing its trainable parameters.
pub trait Parameterized {
    /// Mutable references to every parameter, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Total scalar parameter count.
    fn num_params(&self) -> usize;

    /// Calls `f` on every parameter, in the same stable order as
    /// [`Parameterized::params_mut`], without materialising a vector — the
    /// allocation-free traversal [`Adam::step_visit`] relies on. The
    /// default goes through `params_mut` (which allocates); layers on a
    /// zero-allocation path should override it.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Clears all gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// The Adam optimizer (Kingma & Ba). Moment state lives inside each
/// [`Param`]; the optimizer tracks only hyperparameters and the step count.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional global-gradient-norm clip applied before each step.
    pub clip_norm: Option<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard defaults (β₁=0.9, β₂=0.999, ε=1e-8) and gradient
    /// clipping at global norm 5.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: Some(5.0), t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Overrides the step counter — used when restoring a checkpointed
    /// optimizer, so the bias-correction schedule continues exactly where
    /// the saved run left off.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update to every parameter, then clears gradients.
    pub fn step(&mut self, mut params: Vec<&mut Param>) {
        self.t += 1;
        if let Some(max_norm) = self.clip_norm {
            clip_global_norm(&mut params, max_norm);
        }
        for p in params {
            p.adam_step(self.lr, self.beta1, self.beta2, self.eps, self.t);
            p.zero_grad();
        }
    }

    /// [`Adam::step`] via [`Parameterized::visit_params`]: bit-identical
    /// updates with **zero** heap allocation (no parameter vector is
    /// built). Gradient clipping runs as two traversals — one to accumulate
    /// the global norm in `params_mut` order, one to scale and step — which
    /// reproduces [`clip_global_norm`]'s accumulation order exactly.
    pub fn step_visit(&mut self, model: &mut dyn Parameterized) {
        self.t += 1;
        let mut scale = 1.0f32;
        if let Some(max_norm) = self.clip_norm {
            let mut total = 0.0f32;
            model.visit_params(&mut |p| {
                total += p.grad.data().iter().map(|g| g * g).sum::<f32>();
            });
            let norm = total.sqrt();
            if norm > max_norm && norm > 0.0 {
                scale = max_norm / norm;
            }
        }
        let (lr, beta1, beta2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        model.visit_params(&mut |p| {
            if scale != 1.0 {
                p.grad.scale_assign(scale);
            }
            p.adam_step(lr, beta1, beta2, eps, t);
            p.zero_grad();
        });
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f32) {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.scale_assign(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize f(x) = (x - 3)^2 elementwise
        let mut p = Param::new(Matrix::zeros(1, 4));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g: Vec<f32> = p.value.data().iter().map(|&x| 2.0 * (x - 3.0)).collect();
            p.grad = Matrix::from_vec(1, 4, g);
            opt.step(vec![&mut p]);
        }
        for &x in p.value.data() {
            assert!((x - 3.0).abs() < 1e-3, "x = {x}");
        }
    }

    #[test]
    fn sgd_direction() {
        let mut p = Param::new(Matrix::filled(1, 1, 1.0));
        p.grad = Matrix::filled(1, 1, 2.0);
        p.sgd_step(0.5);
        assert_eq!(p.value.data()[0], 0.0);
    }

    #[test]
    fn clip_scales_to_max_norm() {
        let mut a = Param::new(Matrix::zeros(1, 1));
        let mut b = Param::new(Matrix::zeros(1, 1));
        a.grad = Matrix::filled(1, 1, 3.0);
        b.grad = Matrix::filled(1, 1, 4.0);
        let mut refs = vec![&mut a, &mut b];
        clip_global_norm(&mut refs, 1.0);
        let norm = (a.grad.data()[0].powi(2) + b.grad.data()[0].powi(2)).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut a = Param::new(Matrix::zeros(1, 1));
        a.grad = Matrix::filled(1, 1, 0.5);
        let mut refs = vec![&mut a];
        clip_global_norm(&mut refs, 1.0);
        assert_eq!(a.grad.data()[0], 0.5);
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad = Matrix::filled(2, 2, 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(vec![&mut p]);
        assert_eq!(p.grad, Matrix::zeros(2, 2));
        assert_eq!(opt.steps(), 1);
    }

    /// A two-param model for exercising the visitor-based optimizer path.
    struct Pair(Param, Param);

    impl Parameterized for Pair {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.0, &mut self.1]
        }

        fn num_params(&self) -> usize {
            self.0.len() + self.1.len()
        }

        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
            f(&mut self.1);
        }
    }

    /// `step_visit` must be bit-identical to `step` — including when
    /// gradient clipping triggers (huge grads) and when it does not.
    #[test]
    fn step_visit_matches_step_bitwise() {
        for grad_scale in [0.01f32, 100.0] {
            let make = || {
                let mut a = Param::new(Matrix::filled(2, 3, 0.5));
                let mut b = Param::new(Matrix::filled(1, 3, -0.25));
                for (i, g) in a.grad.data_mut().iter_mut().enumerate() {
                    *g = grad_scale * (i as f32 - 2.5);
                }
                for (i, g) in b.grad.data_mut().iter_mut().enumerate() {
                    *g = grad_scale * (1.5 - i as f32);
                }
                Pair(a, b)
            };
            let mut via_vec = make();
            let mut via_visit = make();
            let mut opt1 = Adam::new(0.05);
            let mut opt2 = Adam::new(0.05);
            for _ in 0..3 {
                opt1.step(via_vec.params_mut());
                opt2.step_visit(&mut via_visit);
                // Refill the gradients so later steps exercise the moments.
                for (p, q) in [(&mut via_vec.0, &mut via_visit.0), (&mut via_vec.1, &mut via_visit.1)] {
                    for (i, g) in p.grad.data_mut().iter_mut().enumerate() {
                        *g = grad_scale * (i as f32 - 1.0);
                    }
                    for (i, g) in q.grad.data_mut().iter_mut().enumerate() {
                        *g = grad_scale * (i as f32 - 1.0);
                    }
                }
            }
            assert_eq!(via_vec.0.value.data(), via_visit.0.value.data());
            assert_eq!(via_vec.1.value.data(), via_visit.1.value.data());
            let (m1, v1) = via_vec.0.adam_state();
            let (m2, v2) = via_visit.0.adam_state();
            assert_eq!(m1.data(), m2.data());
            assert_eq!(v1.data(), v2.data());
            assert_eq!(opt1.steps(), opt2.steps());
        }
    }

    #[test]
    fn adam_state_round_trips_through_the_accessors() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad = Matrix::filled(1, 2, 1.0);
        let mut opt = Adam::new(0.1);
        opt.step(vec![&mut p]);
        let (m, v) = p.adam_state();
        let (m, v) = (m.clone(), v.clone());
        assert!(m.data().iter().any(|&x| x != 0.0));
        let mut q = Param::new(Matrix::zeros(1, 2));
        let (qm, qv) = q.adam_state_mut();
        qm.copy_from(&m);
        qv.copy_from(&v);
        assert_eq!(q.adam_state().0.data(), m.data());
        assert_eq!(q.adam_state().1.data(), v.data());
        let mut restored = Adam::new(0.1);
        restored.set_steps(opt.steps());
        assert_eq!(restored.steps(), 1);
    }
}
