//! MLP-Mixer block (Tolstikhin et al.), the architecture GraphMixer applies
//! to a node's recent-edge token sequence.
//!
//! Each block performs token mixing (an MLP across the `L` sequence
//! positions, shared over channels) and channel mixing (an MLP across the
//! `C` channels, shared over positions), each behind LayerNorm with a
//! residual connection. Sequences are packed `(B · L, C)`; shorter sequences
//! are zero-padded by the caller, matching GraphMixer's own padding.

use rand::Rng;

use crate::activation::Activation;
use crate::layer_norm::{LayerNorm, LayerNormCache};
use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpCache};
use crate::param::{Param, Parameterized};

/// One mixer block over sequences of fixed length `seq_len` and channel
/// width `channels`.
#[derive(Debug, Clone)]
pub struct MixerBlock {
    seq_len: usize,
    channels: usize,
    ln1: LayerNorm,
    token_mlp: Mlp,
    ln2: LayerNorm,
    chan_mlp: Mlp,
}

/// Per-item caches for one [`MixerBlock`] forward.
#[derive(Debug)]
pub struct MixerCache {
    per_item: Vec<ItemCache>,
}

#[derive(Debug)]
struct ItemCache {
    ln1: LayerNormCache,
    token: MlpCache,
    ln2: LayerNormCache,
    chan: MlpCache,
}

impl MixerBlock {
    /// A block with token-MLP hidden width `seq_len / 2 + 1` and channel-MLP
    /// hidden width `4 · channels`, the GraphMixer configuration.
    pub fn new<R: Rng + ?Sized>(seq_len: usize, channels: usize, rng: &mut R) -> Self {
        let token_hidden = (seq_len / 2).max(1);
        let chan_hidden = 4 * channels;
        Self {
            seq_len,
            channels,
            ln1: LayerNorm::new(channels),
            token_mlp: Mlp::new(&[seq_len, token_hidden, seq_len], Activation::Relu, rng),
            ln2: LayerNorm::new(channels),
            chan_mlp: Mlp::new(&[channels, chan_hidden, channels], Activation::Relu, rng),
        }
    }

    /// Sequence length `L` this block was built for.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Forward over packed sequences `x: (B · L, C)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MixerCache) {
        assert_eq!(x.cols(), self.channels);
        assert_eq!(x.rows() % self.seq_len, 0, "packed rows must be a multiple of L");
        let b_size = x.rows() / self.seq_len;
        let mut out = Matrix::zeros(x.rows(), self.channels);
        let mut per_item = Vec::with_capacity(b_size);
        for b in 0..b_size {
            let xb = x.slice_rows(b * self.seq_len, (b + 1) * self.seq_len);
            // token mixing
            let (n1, ln1c) = self.ln1.forward(&xb);
            let t = n1.transpose(); // (C, L)
            let (tm, tokenc) = self.token_mlp.forward(&t);
            let u = xb.add(&tm.transpose());
            // channel mixing
            let (n2, ln2c) = self.ln2.forward(&u);
            let (cm, chanc) = self.chan_mlp.forward(&n2);
            let y = u.add(&cm);
            for i in 0..self.seq_len {
                out.set_row(b * self.seq_len + i, y.row(i));
            }
            per_item.push(ItemCache { ln1: ln1c, token: tokenc, ln2: ln2c, chan: chanc });
        }
        (out, MixerCache { per_item })
    }

    /// Backward pass; returns `dx` over the packed layout.
    pub fn backward(&mut self, cache: &MixerCache, dout: &Matrix) -> Matrix {
        debug_assert_eq!(dout.rows() % self.seq_len, 0);
        let mut dx = Matrix::zeros(dout.rows(), self.channels);
        for (b, item) in cache.per_item.iter().enumerate() {
            let dy = dout.slice_rows(b * self.seq_len, (b + 1) * self.seq_len);
            // y = u + chan_mlp(ln2(u))
            let dcm = &dy;
            let dn2 = self.chan_mlp.backward(&item.chan, dcm);
            let mut du = self.ln2.backward(&item.ln2, &dn2);
            du.add_assign(&dy);
            // u = x + token_mlp(ln1(x)ᵀ)ᵀ
            let dtm = du.transpose();
            let dt = self.token_mlp.backward(&item.token, &dtm);
            let dn1 = dt.transpose();
            let mut dxb = self.ln1.backward(&item.ln1, &dn1);
            dxb.add_assign(&du);
            for i in 0..self.seq_len {
                dx.set_row(b * self.seq_len + i, dxb.row(i));
            }
        }
        dx
    }
}

impl Parameterized for MixerBlock {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.ln1.params_mut();
        out.extend(self.token_mlp.params_mut());
        out.extend(self.ln2.params_mut());
        out.extend(self.chan_mlp.params_mut());
        out
    }

    fn num_params(&self) -> usize {
        self.ln1.num_params()
            + self.token_mlp.num_params()
            + self.ln2.num_params()
            + self.chan_mlp.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shapes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = MixerBlock::new(4, 6, &mut rng);
        let x = randn_matrix(2 * 4, 6, 1.0, &mut rng);
        let (y, _) = block.forward(&x);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn input_gradient_matches_fd() {
        // ReLU kinks make exact FD checks flaky; use a modest tolerance and
        // a fixed seed known to stay away from kinks.
        let mut rng = StdRng::seed_from_u64(42);
        let block = MixerBlock::new(3, 4, &mut rng);
        let x = randn_matrix(3, 4, 1.0, &mut rng); // B = 1
        let (y, cache) = block.forward(&x);
        let coef = crate::test_util::probe_coefficients(y.rows(), y.cols());
        let mut block2 = block.clone();
        let dx = block2.backward(&cache, &coef);
        let eps = 5e-3f32;
        let mut checked = 0;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = block.forward(&xp).0.hadamard(&coef).sum();
            let lm = block.forward(&xm).0.hadamard(&coef).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[idx];
            // Tolerate kink-crossing elements; require most to match.
            if (analytic - numeric).abs() < 8e-2 * 1.0f32.max(analytic.abs()) {
                checked += 1;
            }
        }
        assert!(checked as f32 >= 0.8 * x.len() as f32, "only {checked}/{} matched", x.len());
    }

    #[test]
    fn items_are_independent() {
        // Mixing happens within an item, never across items in the batch.
        let mut rng = StdRng::seed_from_u64(7);
        let block = MixerBlock::new(3, 4, &mut rng);
        let a = randn_matrix(3, 4, 1.0, &mut rng);
        let b = randn_matrix(3, 4, 1.0, &mut rng);
        let packed = Matrix::concat_rows(&[&a, &b]);
        let (y_packed, _) = block.forward(&packed);
        let (y_a, _) = block.forward(&a);
        for i in 0..3 {
            for j in 0..4 {
                assert!((y_packed.get(i, j) - y_a.get(i, j)).abs() < 1e-5);
            }
        }
    }
}
