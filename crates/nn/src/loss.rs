//! Losses: softmax cross-entropy (hard and soft labels), binary
//! cross-entropy with logits, and mean squared error.
//!
//! Every loss returns `(mean loss, d loss / d logits)` so callers feed the
//! gradient straight into a model's backward pass. Empirical risk
//! minimization (paper Eqs. 10, 20) uses these for classification, anomaly
//! detection, and — via soft labels — node affinity prediction.

use crate::activation::sigmoid;
use crate::matrix::Matrix;

/// Row-wise numerically stable softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let (rows, cols) = logits.shape();
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let out_row = out.row_mut(i);
        for j in 0..cols {
            let e = (row[j] - max).exp();
            out_row[j] = e;
            sum += e;
        }
        for v in out_row {
            *v /= sum;
        }
    }
    out
}

/// Row-wise log-softmax.
pub fn log_softmax(logits: &Matrix) -> Matrix {
    let (rows, cols) = logits.shape();
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for (j, &v) in row.iter().enumerate().take(cols) {
            out.set(i, j, v - lse);
        }
    }
    out
}

/// Mean softmax cross-entropy against integer class targets.
///
/// Returns `(loss, dlogits)` with `dlogits = (softmax − onehot) / B`.
/// Thin allocating wrapper over [`softmax_cross_entropy_into`] (one
/// implementation of the math, bit-identical by construction).
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    let mut dlogits = Matrix::default();
    let loss = softmax_cross_entropy_into(logits, targets, &mut dlogits);
    (loss, dlogits)
}

/// [`softmax_cross_entropy`] into a caller-owned gradient buffer:
/// `dlogits` is resized in place and overwritten, so a warmed-up caller
/// (the online fine-tuning step path) performs **zero** heap allocations.
/// Loss and gradient are bit-identical to the allocating form.
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    targets: &[usize],
    dlogits: &mut Matrix,
) -> f32 {
    let (rows, cols) = logits.shape();
    assert_eq!(rows, targets.len(), "batch/target mismatch");
    assert!(rows > 0, "empty batch");
    // Every element is written below; skip the zero fill.
    dlogits.resize_for_overwrite(rows, cols);
    let inv_b = 1.0 / rows as f32;
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < cols, "target {t} out of range for {cols} classes");
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Same exp/sum accumulation as `softmax`, written straight into the
        // gradient row; same log-sum-exp as `log_softmax` for the loss.
        let out = dlogits.row_mut(i);
        let mut sum = 0.0f32;
        for j in 0..cols {
            let e = (row[j] - max).exp();
            out[j] = e;
            sum += e;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        // `sum` accumulated the same exps in the same order the log-softmax
        // would — reuse it for the log-sum-exp instead of a second exp pass.
        let lse = sum.ln() + max;
        loss -= row[t] - lse;
        out[t] -= 1.0;
        for v in out {
            *v *= inv_b;
        }
    }
    loss * inv_b
}

/// Mean cross-entropy against soft target distributions (rows of `targets`).
///
/// Used for node affinity prediction, where `Y_i(t)` is a normalized affinity
/// vector. Target rows need not sum to 1; the general gradient
/// `dlogits = (softmax · Σ_j t_j − t) / B` is used. Thin allocating wrapper
/// over [`soft_cross_entropy_into`].
pub fn soft_cross_entropy(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    let mut dlogits = Matrix::default();
    let loss = soft_cross_entropy_into(logits, targets, &mut dlogits);
    (loss, dlogits)
}

/// [`soft_cross_entropy`] into a caller-owned gradient buffer (`dlogits`
/// resized in place and overwritten — zero heap allocations once warmed
/// up). Loss and gradient are bit-identical to the allocating form.
pub fn soft_cross_entropy_into(logits: &Matrix, targets: &Matrix, dlogits: &mut Matrix) -> f32 {
    assert_eq!(logits.shape(), targets.shape(), "logits/targets shape mismatch");
    let (rows, cols) = logits.shape();
    assert!(rows > 0, "empty batch");
    // Every element is written below; skip the zero fill.
    dlogits.resize_for_overwrite(rows, cols);
    let inv_b = 1.0 / rows as f32;
    let mut loss = 0.0f32;
    for i in 0..rows {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // `softmax`'s probabilities, staged in the gradient row.
        let out = dlogits.row_mut(i);
        let mut sum = 0.0f32;
        for j in 0..cols {
            let e = (row[j] - max).exp();
            out[j] = e;
            sum += e;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        // Same exp-sum, same accumulation order — no second exp pass.
        let lse = sum.ln() + max;
        let t_row = targets.row(i);
        let t_sum: f32 = t_row.iter().sum();
        for (j, &t) in t_row.iter().enumerate() {
            loss -= t * (row[j] - lse);
            out[j] = (out[j] * t_sum - t) * inv_b;
        }
    }
    loss * inv_b
}

/// Mean binary cross-entropy with logits; `logits` is `(B, 1)`.
///
/// Returns `(loss, dlogits)` with `dlogits = (σ(x) − y) / B`.
pub fn bce_with_logits(logits: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    assert_eq!(logits.cols(), 1, "bce expects (B, 1) logits");
    assert_eq!(logits.rows(), targets.len(), "batch/target mismatch");
    assert!(!targets.is_empty(), "empty batch");
    let b = targets.len() as f32;
    let mut loss = 0.0f32;
    let mut dlogits = Matrix::zeros(logits.rows(), 1);
    for (i, &y) in targets.iter().enumerate() {
        let x = logits.get(i, 0);
        // log(1 + e^{-|x|}) + max(x, 0) - x*y  is the stable BCE.
        loss += (1.0 + (-x.abs()).exp()).ln() + x.max(0.0) - x * y;
        dlogits.set(i, 0, (sigmoid(x) - y) / b);
    }
    (loss / b, dlogits)
}

/// Mean squared error, averaged over all elements.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    assert!(!pred.is_empty(), "empty batch");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = randn_matrix(4, 6, 3.0, &mut rng);
        let p = softmax(&x);
        for i in 0..4 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_with_large_logits() {
        let x = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 999.0]);
        let p = softmax(&x);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.get(0, 0) - p.get(0, 1)).abs() < 1e-6);
    }

    #[test]
    fn hard_ce_matches_soft_ce_with_onehot() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = randn_matrix(5, 4, 1.0, &mut rng);
        let targets = [0usize, 3, 1, 2, 2];
        let (l1, g1) = softmax_cross_entropy(&logits, &targets);
        let mut onehot = Matrix::zeros(5, 4);
        for (i, &t) in targets.iter().enumerate() {
            onehot.set(i, t, 1.0);
        }
        let (l2, g2) = soft_cross_entropy(&logits, &onehot);
        assert!((l1 - l2).abs() < 1e-5);
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn ce_gradient_is_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = randn_matrix(3, 4, 1.0, &mut rng);
        let targets = [1usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-2f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let numeric = (softmax_cross_entropy(&lp, &targets).0
                - softmax_cross_entropy(&lm, &targets).0)
                / (2.0 * eps);
            assert!((grad.data()[idx] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_gradient_is_finite_difference() {
        let logits = Matrix::from_vec(4, 1, vec![0.3, -1.2, 2.0, 0.0]);
        let targets = [1.0f32, 0.0, 1.0, 0.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-2f32;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let numeric =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((grad.data()[idx] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_loss_value() {
        // logits 0 => p = 0.5 => loss = ln 2 regardless of target
        let logits = Matrix::zeros(2, 1);
        let (loss, _) = bce_with_logits(&logits, &[0.0, 1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn mse_basics() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    /// The `_into` forms are a second implementation of the same math; pin
    /// them bit-equal to the allocating forms so an edit to one that misses
    /// the other fails immediately.
    #[test]
    fn into_forms_match_allocating_forms_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let logits = randn_matrix(5, 4, 2.0, &mut rng);
        let targets = [0usize, 3, 1, 2, 2];
        let (l1, g1) = softmax_cross_entropy(&logits, &targets);
        let mut g2 = Matrix::default();
        let l2 = softmax_cross_entropy_into(&logits, &targets, &mut g2);
        assert_eq!(l1, l2);
        assert_eq!(g1.data(), g2.data());

        let soft = {
            let mut t = randn_matrix(5, 4, 1.0, &mut rng);
            for v in t.data_mut() {
                *v = v.abs();
            }
            t
        };
        let (l1, g1) = soft_cross_entropy(&logits, &soft);
        let l2 = soft_cross_entropy_into(&logits, &soft, &mut g2);
        assert_eq!(l1, l2);
        assert_eq!(g1.data(), g2.data());
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let logits = Matrix::from_vec(1, 2, vec![100.0, -100.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }
}
