//! Weight initialization and Gaussian sampling.
//!
//! Gaussian samples are produced with the Box–Muller transform over `rand`'s
//! uniform source, so the crate needs no extra distribution dependency.

use rand::{Rng, RngExt};

use crate::matrix::Matrix;

/// One standard-normal sample via Box–Muller.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard against log(0) by sampling u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// A matrix of i.i.d. `N(0, std²)` entries.
pub fn randn_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = randn(rng) * std;
    }
    m
}

/// Xavier/Glorot initialization for a `(fan_in, fan_out)` weight matrix.
pub fn xavier<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    randn_matrix(fan_in, fan_out, std, rng)
}

/// He/Kaiming initialization, suited to ReLU hidden layers.
pub fn he<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    randn_matrix(fan_in, fan_out, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn randn_moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier(100, 100, &mut rng);
        let std = (w.data().iter().map(|x| x * x).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0 / 200.0f32).sqrt();
        assert!((std - expected).abs() < 0.01, "std {std} expected {expected}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = randn_matrix(3, 3, 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn_matrix(3, 3, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
