//! End-to-end CLI tests: export a dataset to CSV, then drive every
//! subcommand through `cli::dispatch` exactly as a shell user would.

use std::path::PathBuf;

use datasets::export_csv;
use splash::truncate_to_available;

fn toks(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Writes a small classification dataset to a fresh temp dir and returns
/// (dir, edges_path, queries_path).
fn fixture(tag: &str) -> (PathBuf, String, String) {
    let dir = std::env::temp_dir().join(format!("splash-cli-test-{tag}-{}", std::process::id()));
    let mut dataset = truncate_to_available(&datasets::synthetic_shift(70, 5), 0.3);
    dataset.name = "fixture".into();
    export_csv(&dataset, &dir).expect("export");
    let edges = dir.join("fixture.edges.csv").to_string_lossy().into_owned();
    let queries = dir.join("fixture.queries.csv").to_string_lossy().into_owned();
    (dir, edges, queries)
}

#[test]
fn stats_reports_table2_columns() {
    let (_dir, edges, queries) = fixture("stats");
    let report = cli::dispatch(toks(&format!(
        "stats --edges {edges} --queries {queries} --task classification"
    )))
    .expect("stats runs");
    assert!(report.contains("#nodes"), "{report}");
    assert!(report.contains("fixture"), "{report}");
}

#[test]
fn run_auto_selects_and_reports_metric() {
    let (_dir, edges, queries) = fixture("run");
    let report = cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --epochs 2 --dv 8 --hidden 16 --k 4"
    )))
    .expect("run succeeds");
    assert!(report.contains("selected"), "{report}");
    assert!(report.contains("test weighted F1"), "{report}");
    assert!(report.contains("parameters"), "{report}");
}

#[test]
fn run_with_fixed_features_skips_selection() {
    let (_dir, edges, queries) = fixture("fixed");
    let report = cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --features RF --epochs 2 --dv 8 --hidden 16 --k 4"
    )))
    .expect("run succeeds");
    assert!(!report.contains("selected"), "fixed mode must not select: {report}");
    assert!(report.contains("test weighted F1"), "{report}");
}

#[test]
fn run_save_then_predict_reproduces_the_metric() {
    let (dir, edges, queries) = fixture("save");
    let model_path = dir.join("model.bin");
    let report = cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --features P \
         --epochs 2 --dv 8 --hidden 16 --k 4 --save {}",
        model_path.display()
    )))
    .expect("run --save succeeds");
    assert!(report.contains("saved model"), "{report}");
    let metric_line = report
        .lines()
        .find(|l| l.starts_with("test weighted F1"))
        .expect("metric line");

    let predict = cli::dispatch(toks(&format!(
        "predict --model-file {} --edges {edges} --queries {queries} --task classification",
        model_path.display()
    )))
    .expect("predict succeeds");
    // The same dataset + stored config must reproduce the training run's
    // test metric exactly (deterministic capture + deterministic model).
    let predicted_line = predict
        .lines()
        .find(|l| l.starts_with("test weighted F1"))
        .expect("metric line");
    assert_eq!(
        metric_line.split(':').nth(1).map(str::trim),
        predicted_line.split(':').nth(1).map(str::trim),
        "run: {report}\npredict: {predict}"
    );
}

/// `serve` replays the stream through the service façade; `--shards N`
/// must serve the identical metric (bit-identical engine contract) and
/// report per-shard counters.
#[test]
fn serve_sharded_matches_unsharded_metric() {
    let (dir, edges, queries) = fixture("serve-shards");
    let model_path = dir.join("model.bin");
    cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --features S \
         --epochs 2 --dv 8 --hidden 16 --k 4 --save {}",
        model_path.display()
    )))
    .expect("run --save succeeds");

    let serve = |extra: &str| {
        cli::dispatch(toks(&format!(
            "serve --model-file {} --edges {edges} --queries {queries} \
             --task classification{extra}",
            model_path.display()
        )))
        .expect("serve succeeds")
    };
    let single = serve("");
    let sharded = serve(" --shards 3");
    let metric = |report: &str| {
        report
            .lines()
            .find(|l| l.starts_with("test weighted F1"))
            .expect("metric line")
            .to_string()
    };
    assert_eq!(metric(&single), metric(&sharded), "single: {single}\nsharded: {sharded}");
    assert!(single.contains("shard engines  : 1"), "{single}");
    assert!(sharded.contains("shard engines  : 3"), "{sharded}");
    assert!(sharded.contains("shard 0"), "{sharded}");
    assert!(sharded.contains("shard 2"), "{sharded}");
    assert!(!single.contains("shard 0"), "single-engine report lists no shards: {single}");
}

/// `serve --online N` keeps learning while it serves: the report shows
/// the continual-learning counters, the metric stays valid, and a zero
/// cadence is a rendered error.
#[test]
fn serve_online_fine_tunes_while_serving() {
    let (dir, edges, queries) = fixture("serve-online");
    let model_path = dir.join("model.bin");
    cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --features R \
         --epochs 2 --dv 8 --hidden 16 --k 4 --save {}",
        model_path.display()
    )))
    .expect("run --save succeeds");

    let report = cli::dispatch(toks(&format!(
        "serve --model-file {} --edges {edges} --queries {queries} \
         --task classification --online 25",
        model_path.display()
    )))
    .expect("serve --online succeeds");
    assert!(report.contains("online         : fine-tune every 25 labels"), "{report}");
    assert!(report.contains("labels absorbed"), "{report}");
    assert!(report.contains("fine-tunes"), "{report}");
    assert!(report.contains("test weighted F1"), "{report}");

    let err = cli::dispatch(toks(&format!(
        "serve --model-file {} --edges {edges} --queries {queries} \
         --task classification --online 0",
        model_path.display()
    )))
    .unwrap_err();
    assert!(err.0.contains("positive"), "{err}");
}

#[test]
fn predict_writes_score_csv() {
    let (dir, edges, queries) = fixture("scores");
    let model_path = dir.join("model.bin");
    cli::dispatch(toks(&format!(
        "run --edges {edges} --queries {queries} --task classification --features RF \
         --epochs 1 --dv 8 --hidden 16 --k 4 --save {}",
        model_path.display()
    )))
    .expect("run --save succeeds");
    let scores_path = dir.join("scores.csv");
    cli::dispatch(toks(&format!(
        "predict --model-file {} --edges {edges} --queries {queries} --task classification \
         --scores {}",
        model_path.display(),
        scores_path.display()
    )))
    .expect("predict --scores succeeds");
    let csv = std::fs::read_to_string(&scores_path).expect("scores written");
    assert!(csv.starts_with("node,time,s0,s1"), "{}", &csv[..40.min(csv.len())]);
    assert!(csv.lines().count() > 1, "scores must contain rows");
}

#[test]
fn predict_rejects_garbage_model_files() {
    let (dir, edges, queries) = fixture("badmodel");
    let model_path = dir.join("bogus.bin");
    std::fs::write(&model_path, b"definitely not a model").unwrap();
    let err = cli::dispatch(toks(&format!(
        "predict --model-file {} --edges {edges} --queries {queries} --task classification",
        model_path.display()
    )))
    .unwrap_err();
    assert!(err.0.contains("magic"), "{err}");
}

#[test]
fn baseline_runs_tgnn_and_dtdg_models() {
    let (_dir, edges, queries) = fixture("baseline");
    for model in ["jodie", "slid"] {
        let report = cli::dispatch(toks(&format!(
            "baseline --model {model} --edges {edges} --queries {queries} --task classification --epochs 1"
        )))
        .expect("baseline runs");
        assert!(report.contains(&format!("{model}+RF")), "{report}");
    }
}

#[test]
fn drift_reports_all_three_shift_families() {
    let (_dir, edges, queries) = fixture("drift");
    let report = cli::dispatch(toks(&format!(
        "drift --edges {edges} --queries {queries} --task classification --buckets 4"
    )))
    .expect("drift runs");
    assert!(report.contains("positional"), "{report}");
    assert!(report.contains("structural"), "{report}");
    assert!(report.contains("property"), "{report}");
}

#[test]
fn slade_is_rejected_off_task() {
    let (_dir, edges, queries) = fixture("slade");
    let err = cli::dispatch(toks(&format!(
        "baseline --model slade --edges {edges} --queries {queries} --task classification"
    )))
    .unwrap_err();
    assert!(err.0.contains("does not support"), "{err}");
}

#[test]
fn typo_flags_are_rejected() {
    let (_dir, edges, queries) = fixture("typo");
    let err = cli::dispatch(toks(&format!(
        "stats --edges {edges} --queries {queries} --task classification --epoch 5"
    )))
    .unwrap_err();
    assert!(err.0.contains("unknown flag --epoch"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = cli::dispatch(toks(
        "stats --edges /nonexistent/a.csv --queries /nonexistent/b.csv --task anomaly",
    ))
    .unwrap_err();
    assert!(err.0.contains("a.csv"), "{err}");
}

#[test]
fn generate_writes_loadable_csvs() {
    let dir = std::env::temp_dir().join(format!("splash-cli-gen-{}", std::process::id()));
    let report = cli::dispatch(toks(&format!(
        "generate --dataset tgbn-trade --out {}",
        dir.display()
    )))
    .expect("generate runs");
    assert!(report.contains("tgbn-trade.edges.csv"), "{report}");
    // The generated files immediately round-trip through `stats`.
    let stats = cli::dispatch(toks(&format!(
        "stats --edges {d}/tgbn-trade.edges.csv --queries {d}/tgbn-trade.queries.csv --task affinity",
        d = dir.display()
    )))
    .expect("stats on generated files");
    assert!(stats.contains("tgbn-trade"), "{stats}");
}
