//! The `splash` command-line binary. All logic lives in the library half
//! ([`cli::dispatch`]) so it can be exercised by integration tests.

/// Counts allocator calls so `splash bench` can gate on steady-state
/// allocation counts; every other subcommand pays one relaxed atomic
/// increment per allocation, which is noise.
#[global_allocator]
static GLOBAL: cli::bench::CountingAlloc = cli::bench::CountingAlloc;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(tokens) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
