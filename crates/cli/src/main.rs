//! The `splash` command-line binary. All logic lives in the library half
//! ([`cli::dispatch`]) so it can be exercised by integration tests.

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(tokens) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
