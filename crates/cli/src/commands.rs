//! Subcommand implementations for the `splash` binary.

use std::fmt::Write as _;
use std::path::Path;

use baselines::{run as run_baseline, run_dtdg, BaselineKind, BaselineVariant, DtdgKind};
use ctdg::{replay, Event, Label, TemporalEdge};
use datasets::{
    edges_from_csv, export_csv, queries_from_csv, Dataset, DatasetStats, Task,
};
use splash::{
    capture, load_model, predict_slim, run_matrix, run_slim_with, run_splash, save_model,
    split_bounds, DurabilityConfig, EngineSpec, FeatureProcess, FineTunePolicy, IngestRequest,
    InputFeatures, LateEdgePolicy, ModelSpec, OnlineConfig, PredictRequest, PredictResponse,
    RecoveryReport, ScenarioConfig, ScenarioSpec, ServerConfig, SplashConfig, SplashServer,
    SplashService, SEEN_FRAC,
};

use crate::args::{ArgError, Args};

/// The user-facing usage text.
pub fn usage() -> String {
    "splash — node property prediction on edge streams (SPLASH reproduction)

USAGE:
  splash generate --dataset <name|all> --out <dir>
  splash stats    --edges <csv> --queries <csv> --task <task> [--classes N]
  splash run      --edges <csv> --queries <csv> --task <task> [--classes N]
                  [--features auto|R|P|S|RF|ZF|joint] [--epochs N] [--k N]
                  [--dv N] [--hidden N] [--seed N] [--save <model.bin>]
  splash predict  --model-file <model.bin> --edges <csv> --queries <csv>
                  --task <task> [--scores <out.csv>]
  splash serve    --model-file <model.bin> --edges <csv> --queries <csv>
                  --task <task> [--late-policy error|drop] [--shards N]
                  [--online N] [--statz-out FILE]
                  [--checkpoint-dir DIR [--checkpoint-every N]]
                  [--listen ADDR [--workers N] [--queue-depth Q] [--deadline-ms D]
                   [--slow-ms MS]]
  splash baseline --model <name> --edges <csv> --queries <csv> --task <task>
                  [--classes N] [--features plain|RF] [--epochs N] [--seed N]
  splash scenarios [--out DIR] [--smoke true] [--timing true] [--frac F]
                  [--regimes r1,r2,..] [--models m1,m2,..] [--online-every N]
                  [--epochs N] [--k N] [--dv N] [--hidden N] [--seed N]
  splash drift    --edges <csv> --queries <csv> --task <task> [--buckets N]
  splash bench    --baseline <file> | --check <file>  [--iters N]

  <task>   anomaly | classification | affinity
  <name>   reddit | wiki | mooc | email-eu | gdelt | tgbn-trade | tgbn-genre
  <model>  jodie | dysat | tgat | tgn | graphmixer | dygformer | freedyg |
           slade | dida | slid
  <regime> drift | anomaly | classification | affinity | scalability
           (scenario models: splash, splash+online, or any baseline variant
           such as tgn or tgn+RF; on the drift regime, splash+online is
           added automatically next to the frozen splash slot)
"
    .to_string()
}

/// Parses and executes one command line; returns the rendered report.
pub fn dispatch(tokens: Vec<String>) -> Result<String, ArgError> {
    let args = Args::parse(tokens)?;
    let out = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args)?,
        Some("stats") => cmd_stats(&args)?,
        Some("run") => cmd_run(&args)?,
        Some("predict") => cmd_predict(&args)?,
        Some("serve") => cmd_serve(&args)?,
        Some("baseline") => cmd_baseline(&args)?,
        Some("scenarios") => cmd_scenarios(&args)?,
        Some("drift") => cmd_drift(&args)?,
        Some("bench") => crate::bench::cmd_bench(&args)?,
        Some("help") | None => return Ok(usage()),
        Some(other) => return Err(ArgError(format!("unknown command {other:?}\n\n{}", usage()))),
    };
    args.reject_unused()?;
    Ok(out)
}

fn parse_task(raw: &str) -> Result<Task, ArgError> {
    match raw {
        "anomaly" => Ok(Task::Anomaly),
        "classification" => Ok(Task::Classification),
        "affinity" => Ok(Task::Affinity),
        other => Err(ArgError(format!(
            "unknown task {other:?} (anomaly | classification | affinity)"
        ))),
    }
}

/// Loads a dataset from the two-file CSV interchange format. When
/// `classes` is `None`, the label cardinality is inferred from the queries.
pub fn load_dataset(
    edges_path: &Path,
    queries_path: &Path,
    task: Task,
    classes: Option<usize>,
) -> Result<Dataset, ArgError> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| ArgError(format!("{}: {e}", p.display())))
    };
    let stream = edges_from_csv(&read(edges_path)?)
        .map_err(|e| ArgError(format!("{}: {e}", edges_path.display())))?;
    let queries = queries_from_csv(&read(queries_path)?, task)
        .map_err(|e| ArgError(format!("{}: {e}", queries_path.display())))?;
    if queries.is_empty() {
        return Err(ArgError("the query file contains no queries".into()));
    }
    let num_classes = match classes {
        Some(c) => c,
        None => match task {
            Task::Affinity => queries[0].label.affinity().len(),
            _ => queries
                .iter()
                .map(|q| q.label.class() + 1)
                .max()
                .unwrap_or(2)
                .max(2),
        },
    };
    let dataset = Dataset {
        name: edges_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "cli".into()),
        task,
        stream,
        queries,
        num_classes,
        node_feats: None,
    };
    // Surface label/task mismatches as CLI errors instead of panics.
    for q in &dataset.queries {
        match (task, &q.label) {
            (Task::Affinity, Label::Affinity(a)) if a.len() == num_classes => {}
            (Task::Anomaly | Task::Classification, Label::Class(c)) if *c < num_classes => {}
            _ => {
                return Err(ArgError(format!(
                    "query at t={} has a label incompatible with task/classes",
                    q.time
                )))
            }
        }
    }
    Ok(dataset)
}

fn config_from(args: &Args) -> Result<SplashConfig, ArgError> {
    let mut cfg = SplashConfig::default();
    cfg.epochs = args.get_parsed("epochs", cfg.epochs)?;
    cfg.k = args.get_parsed("k", cfg.k)?;
    cfg.feat_dim = args.get_parsed("dv", cfg.feat_dim)?;
    cfg.node2vec = embed::Node2VecConfig::fast(cfg.feat_dim);
    cfg.hidden = args.get_parsed("hidden", cfg.hidden)?;
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    // Reject impossible knob combinations here, with the service layer's
    // message, instead of panicking (or hanging) somewhere in training.
    cfg.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(cfg)
}

fn load_from(args: &Args) -> Result<(Dataset, Task), ArgError> {
    let task = parse_task(args.require("task")?)?;
    let classes = match args.get("classes") {
        None => None,
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|e| ArgError(format!("--classes {raw:?}: {e}")))?,
        ),
    };
    let edges = args.require("edges")?.to_string();
    let queries = args.require("queries")?.to_string();
    let d = load_dataset(Path::new(&edges), Path::new(&queries), task, classes)?;
    Ok((d, task))
}

fn metric_name(task: Task) -> &'static str {
    match task {
        Task::Anomaly => "AUC",
        Task::Classification => "weighted F1",
        Task::Affinity => "NDCG@10",
    }
}

fn cmd_generate(args: &Args) -> Result<String, ArgError> {
    let which = args.require("dataset")?.to_string();
    let out_dir = args.require("out")?.to_string();
    let all = datasets::all_benchmarks();
    let selected: Vec<Dataset> = if which == "all" {
        all
    } else {
        let found = all.into_iter().find(|d| d.name == which);
        vec![found.ok_or_else(|| ArgError(format!("unknown dataset {which:?}")))?]
    };
    let mut report = String::new();
    for d in &selected {
        export_csv(d, Path::new(&out_dir)).map_err(|e| ArgError(format!("{out_dir}: {e}")))?;
        let _ = writeln!(
            report,
            "wrote {out_dir}/{name}.edges.csv and {out_dir}/{name}.queries.csv ({} edges, {} queries)",
            d.stream.len(),
            d.queries.len(),
            name = d.name,
        );
    }
    Ok(report)
}

fn cmd_stats(args: &Args) -> Result<String, ArgError> {
    let (dataset, _) = load_from(args)?;
    let stats = DatasetStats::compute(&dataset);
    Ok(format!("{}\n{}\n", DatasetStats::table_header(), stats.table_row()))
}

fn parse_features(raw: &str) -> Result<Option<InputFeatures>, ArgError> {
    Ok(Some(match raw {
        "auto" => return Ok(None),
        "R" => InputFeatures::Process(FeatureProcess::Random),
        "P" => InputFeatures::Process(FeatureProcess::Positional),
        "S" => InputFeatures::Process(FeatureProcess::Structural),
        "RF" => InputFeatures::RawRandom,
        "ZF" => InputFeatures::Zero,
        "joint" => InputFeatures::Joint,
        other => {
            return Err(ArgError(format!(
                "unknown feature mode {other:?} (auto|R|P|S|RF|ZF|joint)"
            )))
        }
    }))
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    // Validate the config before touching the (possibly large) input
    // files: a bad knob should fail in milliseconds.
    let cfg = config_from(args)?;
    let (dataset, task) = load_from(args)?;
    let mode = parse_features(args.get("features").unwrap_or("auto"))?;
    let save_path = args.get("save").map(String::from);
    let out = match mode {
        None => run_splash(&dataset, &cfg),
        Some(m) => run_slim_with(&dataset, &cfg, m),
    };
    let mut report = String::new();
    let _ = writeln!(report, "dataset        : {} ({} queries)", dataset.name, dataset.queries.len());
    if let (Some(sel), Some(risks)) = (out.selected, out.risks) {
        let _ = writeln!(report, "selected       : process {} (risks R/P/S = {:.4}/{:.4}/{:.4})",
            sel.name(), risks[0], risks[1], risks[2]);
    }
    let _ = writeln!(report, "test {:<10}: {:.4}", metric_name(task), out.metric);
    let _ = writeln!(report, "parameters     : {}", out.num_params);
    let _ = writeln!(report, "train/infer (s): {:.2} / {:.3}", out.train_secs, out.infer_secs);

    if let Some(path) = save_path {
        // Retrain the same model deterministically through the lower-level
        // path (the pipeline call above does not expose the model).
        let final_mode = out
            .selected
            .map(InputFeatures::Process)
            .or(mode)
            .expect("run always resolves a feature mode");
        let cap = capture(&dataset, final_mode, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) =
            splash::train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
        save_model(
            std::path::Path::new(&path),
            &mut model,
            &cfg,
            final_mode,
            cap.feat_dim,
            cap.edge_feat_dim,
            out_dim,
        )
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
        let _ = writeln!(report, "saved model    : {path} (mode {})", final_mode.name());
    }
    Ok(report)
}

fn cmd_predict(args: &Args) -> Result<String, ArgError> {
    let model_path = args.require("model-file")?.to_string();
    let saved = load_model(Path::new(&model_path))
        .map_err(|e| ArgError(format!("{model_path}: {e}")))?;
    let task = parse_task(args.require("task")?)?;
    let edges = args.require("edges")?.to_string();
    let queries = args.require("queries")?.to_string();
    let dataset = load_dataset(
        Path::new(&edges),
        Path::new(&queries),
        task,
        Some(saved.out_dim),
    )?;

    let cap = capture(&dataset, saved.mode, &saved.cfg, SEEN_FRAC);
    if cap.feat_dim != saved.feat_dim || cap.edge_feat_dim != saved.edge_feat_dim {
        return Err(ArgError(format!(
            "input dimensions ({} node / {} edge) do not match the saved model ({} / {})",
            cap.feat_dim, cap.edge_feat_dim, saved.feat_dim, saved.edge_feat_dim
        )));
    }
    let (_, val_end) = split_bounds(cap.queries.len());
    let test = &cap.queries[val_end..];
    let logits = predict_slim(&saved.model, test, 256);
    let labels: Vec<&Label> = test.iter().map(|q| &q.label).collect();
    let metric = splash::task::evaluate(dataset.task, &logits, &labels);

    if let Some(scores_path) = args.get("scores") {
        let mut csv = String::from("node,time");
        for c in 0..logits.cols() {
            let _ = write!(csv, ",s{c}");
        }
        csv.push('\n');
        for (i, q) in test.iter().enumerate() {
            let _ = write!(csv, "{},{}", q.node, q.time);
            for &v in logits.row(i) {
                let _ = write!(csv, ",{v}");
            }
            csv.push('\n');
        }
        std::fs::write(scores_path, csv).map_err(|e| ArgError(format!("{scores_path}: {e}")))?;
    }

    Ok(format!(
        "model          : {model_path} (mode {})\nqueries scored : {} (test split of {})\ntest {:<10}: {metric:.4}\n",
        saved.mode.name(),
        test.len(),
        cap.queries.len(),
        metric_name(task),
    ))
}

fn parse_late_policy(raw: &str) -> Result<LateEdgePolicy, ArgError> {
    match raw {
        "error" => Ok(LateEdgePolicy::Error),
        "drop" => Ok(LateEdgePolicy::DropLate),
        other => Err(ArgError(format!("unknown late policy {other:?} (error | drop)"))),
    }
}

/// Everything `serve` needs before going live, for either mode (in-process
/// replay or `--listen` wire serving): the loaded service plus the inputs
/// that shaped it.
struct ServingSetup {
    service: SplashService,
    dataset: Dataset,
    model_path: String,
    policy: LateEdgePolicy,
    online: Option<usize>,
    task: Task,
    recovered: Option<RecoveryReport>,
}

fn serving_setup(args: &Args) -> Result<ServingSetup, ArgError> {
    let model_path = args.require("model-file")?.to_string();
    let policy = parse_late_policy(args.get("late-policy").unwrap_or("error"))?;
    let shards: usize = args.get_parsed("shards", 1)?;
    let online: Option<usize> = match args.get("online") {
        None => None,
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|e| ArgError(format!("--online {raw:?}: {e}")))?;
            if n == 0 {
                return Err(ArgError("--online expects a positive label cadence".into()));
            }
            Some(n)
        }
    };
    let task = parse_task(args.require("task")?)?;
    let edges = args.require("edges")?.to_string();
    let queries = args.require("queries")?.to_string();

    // Read the artifact's header first: its output width bounds the legal
    // labels (load_dataset checks them) and its edge-feature width must
    // match the stream, so incompatible inputs fail here as rendered
    // errors instead of shape panics mid-serve.
    let saved = load_model(Path::new(&model_path))
        .map_err(|e| ArgError(format!("{model_path}: {e}")))?;
    let dataset = load_dataset(
        Path::new(&edges),
        Path::new(&queries),
        task,
        Some(saved.out_dim),
    )?;
    if dataset.stream.feat_dim() != saved.edge_feat_dim {
        return Err(ArgError(format!(
            "edge-feature width {} does not match the saved model's {}",
            dataset.stream.feat_dim(),
            saved.edge_feat_dim
        )));
    }

    // The builder config only governs in-service training; the loaded
    // model carries (and validates) its own.
    let mut builder = SplashService::builder(SplashConfig::default())
        .late_edge_policy(policy)
        .shards(shards);
    if let Some(every) = online {
        builder = builder.online(OnlineConfig {
            policy: FineTunePolicy::EveryLabels(every),
            ..OnlineConfig::default()
        });
    }
    let mut service = builder.build().map_err(|e| ArgError(e.to_string()))?;
    service
        .load_model("serving", Path::new(&model_path), &dataset)
        .map_err(|e| ArgError(format!("{model_path}: {e}")))?;

    // `--checkpoint-dir` makes the deployment durable. An empty directory
    // seeds its first checkpoint from the model loaded above; a directory
    // with a committed checkpoint hot-swaps the loaded model with the
    // recovered one (snapshot + WAL replay), so a restarted process picks
    // up exactly where the crashed one stopped — no stream re-replay.
    let recovered = match args.get("checkpoint-dir") {
        None => {
            if args.get("checkpoint-every").is_some() {
                return Err(ArgError(
                    "--checkpoint-every needs --checkpoint-dir".into(),
                ));
            }
            None
        }
        Some(dir) => {
            let dir = dir.to_string();
            let every: u64 = args.get_parsed("checkpoint-every", 256u64)?;
            let cfg = DurabilityConfig::new(&dir).checkpoint_every(every);
            service
                .make_durable("serving", cfg)
                .map_err(|e| ArgError(format!("--checkpoint-dir {dir}: {e}")))?
        }
    };
    Ok(ServingSetup { service, dataset, model_path, policy, online, task, recovered })
}

/// Renders a recovery summary for the operator, or nothing on a cold
/// (first-checkpoint) start.
fn recovery_line(recovered: &Option<RecoveryReport>) -> String {
    match recovered {
        None => String::new(),
        Some(r) => format!(
            "recovered      : epoch {} ({} state shard{}), {} WAL records replayed ({} edges){}\n",
            r.epoch,
            r.snapshot_shards,
            if r.snapshot_shards == 1 { "" } else { "s" },
            r.wal_records_replayed,
            r.wal_edges_replayed,
            if r.wal_tail_truncated { ", torn tail truncated" } else { "" },
        ),
    }
}

/// `serve --listen`: put the loaded model behind the wire front end
/// ([`SplashServer`]) and block until stdin closes (ctrl-d), then shut
/// down cleanly and report the serving counters. The replay mode below
/// and this mode share `serving_setup`, so a model serves identically
/// either way.
fn cmd_serve_listen(args: &Args, addr: &str) -> Result<String, ArgError> {
    // Flags first: a typo'd knob should fail in milliseconds, before the
    // (possibly large) model and stream files are read.
    let cfg = ServerConfig {
        workers: args.get_parsed("workers", ServerConfig::default().workers)?,
        queue_depth: args.get_parsed("queue-depth", ServerConfig::default().queue_depth)?,
        deadline: std::time::Duration::from_millis(args.get_parsed("deadline-ms", 2000u64)?),
        ..ServerConfig::default()
    };
    // `--slow-ms MS` turns the shutdown summary into a slow-request log:
    // every retained trace span at or over the threshold is printed.
    let slow_ms: Option<u64> = match args.get("slow-ms") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|e| ArgError(format!("--slow-ms {raw:?}: {e}")))?,
        ),
    };
    let setup = serving_setup(args)?;
    // Flag errors (zero workers/queue/deadline) surface through the
    // server's own typed validation.
    let handle = SplashServer::bind(setup.service, addr, cfg)
        .map_err(|e| ArgError(format!("--listen {addr}: {e}")))?;
    println!(
        "serving {} on http://{} ({} workers, queue depth {}, deadline {}ms)",
        setup.model_path,
        handle.addr(),
        cfg.workers,
        cfg.queue_depth,
        cfg.deadline.as_millis(),
    );
    println!(
        "model \"serving\": POST /models/serving/{{ingest,predict,labels,fine-tune,publish}}; \
         GET /stats /metrics /statz.json /trace"
    );
    print!("{}", recovery_line(&setup.recovered));
    println!("late policy {:?}; press ctrl-d (stdin EOF) to stop", setup.policy);
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let mut sink = String::new();
    while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
        sink.clear();
    }

    // Shed/deadline counts live in the shared telemetry registry, so the
    // stats snapshot taken after shutdown already carries them; no
    // server-side overlay is needed.
    let tel = handle.telemetry();
    let service = handle.shutdown();
    let stats = service.stats();
    Ok(format!("{stats}{}", tel.summary(slow_ms.map(|ms| ms.saturating_mul(1_000_000)))))
}

/// Streaming deployment through the `SplashService` façade: load a
/// persisted model, replay the post-training period as a live stream
/// (edges ingested in micro-batches, queries answered immediately), and
/// report the serving counters next to the test metric. With `--shards N`
/// the model is served by N hash-partitioned engines (scatter–gather;
/// identical predictions, per-shard counters in the report). With
/// `--online N` the model keeps learning while it serves: every query's
/// ground-truth label is fed back after prediction (prequential
/// evaluation), and a bounded fine-tune round runs — and publishes —
/// every N labels. With `--listen ADDR` the model instead goes behind
/// the HTTP front end until stdin closes.
fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    if let Some(addr) = args.get("listen") {
        let addr = addr.to_string();
        return cmd_serve_listen(args, &addr);
    }
    let ServingSetup { mut service, dataset, model_path, policy, online, task, recovered } =
        serving_setup(args)?;

    // Go live: everything after the model's training prefix arrives as a
    // stream. Consecutive edges between queries form one ingest batch.
    let t_live = service.model_last_time("serving").map_err(|e| ArgError(e.to_string()))?;
    let prefix = dataset.stream.prefix_len_at(t_live);
    let (_, val_end) = split_bounds(dataset.queries.len());
    let mut pending: Vec<TemporalEdge> = Vec::new();
    let mut resp = PredictResponse::default();
    let mut logits: Vec<f32> = Vec::new();
    let mut labels: Vec<&Label> = Vec::new();
    let started = std::time::Instant::now();
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    pending.push(edge.clone());
                }
            }
            Event::Query(qi, q) => {
                if !pending.is_empty() {
                    service
                        .ingest("serving", IngestRequest::new(&pending))
                        .map_err(|e| ArgError(format!("ingest at t={}: {e}", q.time)))?;
                    pending.clear();
                }
                // After a recovery, queries the crashed process already
                // served sit before the restored stream clock — skip them
                // (the metric then covers the resumed tail only).
                if qi >= val_end && q.time >= t_live {
                    service
                        .predict_into("serving", PredictRequest::new(q.node, q.time), &mut resp)
                        .map_err(|e| ArgError(format!("query at t={}: {e}", q.time)))?;
                    logits.extend_from_slice(&resp.logits);
                    labels.push(&q.label);
                }
                // Prequential continual learning: the ground truth is fed
                // back only after the prediction above was recorded, so
                // the metric never sees a model trained on its own answer.
                // Labels from the (already-trained-on) seen period would
                // be past-time for the restored model and are skipped.
                if online.is_some() && q.time >= t_live {
                    service
                        .observe_labels("serving", std::slice::from_ref(q))
                        .map_err(|e| ArgError(format!("label at t={}: {e}", q.time)))?;
                }
            }
        }
    }
    if !pending.is_empty() {
        service
            .ingest("serving", IngestRequest::new(&pending))
            .map_err(|e| ArgError(format!("final ingest: {e}")))?;
    }
    let elapsed = started.elapsed().as_secs_f64();

    // `--statz-out FILE` dumps the metrics registry as JSON with the
    // timing-dependent histogram fields gated off, so two replays of the
    // same inputs write byte-identical files (the CI determinism check).
    if let Some(path) = args.get("statz-out") {
        let body = service.telemetry().registry().render_statz_json(false);
        std::fs::write(path, body).map_err(|e| ArgError(format!("{path}: {e}")))?;
    }

    if labels.is_empty() {
        if recovered.is_some() {
            // A fully-caught-up restart: the checkpoint already covers the
            // whole stream, so there is nothing left to serve or score.
            let mut report = String::new();
            let _ = writeln!(report, "model          : {model_path}");
            let _ = write!(report, "{}", recovery_line(&recovered));
            let _ = writeln!(report, "stream         : fully consumed before restart");
            let _ = write!(report, "{}", service.stats());
            return Ok(report);
        }
        return Err(ArgError("the query file has no test-split queries to serve".into()));
    }
    let out_dim = logits.len() / labels.len();
    let metric = splash::task::evaluate(
        dataset.task,
        &nn::Matrix::from_vec(labels.len(), out_dim, logits),
        &labels,
    );
    let stats = service.stats();
    let mut report = String::new();
    let _ = writeln!(report, "model          : {model_path}");
    let _ = writeln!(report, "late policy    : {policy:?}");
    // One line per registry slot, mirroring `GET /models` on the wire.
    for info in service.models_info() {
        let _ = writeln!(report, "slot           : {info}");
    }
    let _ = write!(report, "{}", recovery_line(&recovered));
    if let Some(every) = online {
        let _ = writeln!(report, "online         : fine-tune every {every} labels");
    }
    // The counters render through `ServiceStats`'s `Display` — one source
    // of truth for the operator-facing format.
    let _ = write!(report, "{stats}");
    let _ = writeln!(
        report,
        "throughput     : {:.0} queries/s ({elapsed:.2}s wall)",
        stats.queries_served as f64 / elapsed.max(1e-9),
    );
    for s in service.shard_stats("serving").map_err(|e| ArgError(e.to_string()))? {
        let _ = writeln!(
            report,
            "  shard {:<2}     : {} ring nodes, {} owned edges, {} queries",
            s.shard, s.owned_nodes, s.owned_edges, s.queries_served,
        );
    }
    let _ = writeln!(report, "test {:<10}: {metric:.4}", metric_name(task));
    Ok(report)
}

fn cmd_baseline(args: &Args) -> Result<String, ArgError> {
    let (dataset, task) = load_from(args)?;
    let cfg = config_from(args)?;
    let model = args.require("model")?.to_string();
    let mode = match args.get("features").unwrap_or("RF") {
        "plain" => InputFeatures::External,
        "RF" => InputFeatures::RawRandom,
        other => {
            return Err(ArgError(format!("unknown feature mode {other:?} (plain|RF)")))
        }
    };
    let out = if let Some(kind) = baseline_kind(&model) {
        // Route the N/A pairing through the typed service-error taxonomy
        // so the CLI, the scenario matrix, and the HTTP front end render
        // the same message for the same refusal.
        BaselineVariant { kind, mode }
            .ensure_supports(dataset.task)
            .map_err(|e| ArgError(e.to_string()))?;
        run_baseline(kind, &dataset, mode, &cfg)
    } else if let Some(kind) = dtdg_kind(&model) {
        run_dtdg(kind, &dataset, mode, &cfg)
    } else {
        return Err(ArgError(format!("unknown model {model:?}\n\n{}", usage())));
    };
    Ok(format!(
        "model          : {}\ntest {:<10}: {:.4}\nparameters     : {}\ntrain/infer (s): {:.2} / {:.3}\n",
        out.name,
        metric_name(task),
        out.metric,
        out.num_params,
        out.train_secs,
        out.infer_secs,
    ))
}

/// The benchmark dataset behind one scenario regime, truncated to `frac`
/// of its available property set when `frac < 1`.
fn scenario_dataset(regime: &str, frac: f64, seed: u64) -> Result<Dataset, ArgError> {
    let base = match regime {
        "drift" => datasets::synthetic_shift(50, seed),
        "anomaly" => datasets::reddit(),
        "classification" => datasets::email_eu(),
        "affinity" => datasets::tgbn_trade(),
        "scalability" => datasets::scalability_stream(20_000, 400, seed),
        other => {
            return Err(ArgError(format!(
                "unknown regime {other:?} (drift | anomaly | classification | affinity | scalability)"
            )))
        }
    };
    if !(frac > 0.0 && frac <= 1.0) {
        return Err(ArgError(format!("--frac {frac} must lie in (0, 1]")));
    }
    Ok(if frac < 1.0 { splash::truncate_to_available(&base, frac) } else { base })
}

/// One named contender: the SPLASH engines by their reserved names, any
/// baseline variant from the registry roster through its serving adapter.
fn scenario_model(name: &str) -> Result<ModelSpec, ArgError> {
    let engine = match name {
        "splash" => EngineSpec::Splash { online: false },
        "splash+online" => EngineSpec::Splash { online: true },
        other => match baselines::parse_variant(other) {
            Some(variant) => EngineSpec::External(baselines::engine_factory(variant)),
            None => {
                let roster: Vec<String> =
                    baselines::all_variants().iter().map(|v| v.name()).collect();
                return Err(ArgError(format!(
                    "unknown scenario model {other:?} (splash | splash+online | {})",
                    roster.join(" | ")
                )));
            }
        },
    };
    Ok(ModelSpec { name: name.to_string(), engine })
}

/// The scenario matrix: every requested dataset regime × every requested
/// model, streamed prequentially through one multi-tenant `SplashService`
/// per regime, rendered as a Table III-style artifact. `--smoke true`
/// shrinks the matrix to a deterministic two-regime, three-contender run
/// (timing off) for CI; `--timing true` adds edges/s and predict-p99
/// cells at the cost of byte-reproducibility.
fn cmd_scenarios(args: &Args) -> Result<String, ArgError> {
    let smoke: bool = args.get_parsed("smoke", false)?;
    let timing: bool = args.get_parsed("timing", false)?;
    let every: usize = args.get_parsed("online-every", 25)?;
    if every == 0 {
        return Err(ArgError("--online-every must be positive".into()));
    }
    let cfg = if smoke {
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        cfg.seed = args.get_parsed("seed", cfg.seed)?;
        cfg
    } else {
        config_from(args)?
    };
    let frac: f64 = args.get_parsed("frac", if smoke { 0.2 } else { 1.0 })?;
    let regimes = args
        .get("regimes")
        .unwrap_or(if smoke {
            "drift,anomaly"
        } else {
            "drift,anomaly,classification,affinity,scalability"
        })
        .to_string();
    let models = args
        .get("models")
        .unwrap_or(if smoke {
            "splash,jodie,tgn+RF"
        } else {
            "splash,jodie,tgat,tgn+RF,graphmixer,slade"
        })
        .to_string();
    let model_names: Vec<&str> = models.split(',').filter(|s| !s.is_empty()).collect();
    if model_names.is_empty() {
        return Err(ArgError("--models must name at least one contender".into()));
    }
    let out_dir = args.get("out").map(String::from);

    let mut specs = Vec::new();
    for regime in regimes.split(',').filter(|s| !s.is_empty()) {
        let dataset = scenario_dataset(regime, frac, cfg.seed)?;
        let mut slots = Vec::new();
        for name in &model_names {
            slots.push(scenario_model(name)?);
            // The paper's drift story is frozen vs continually learning:
            // pair the frozen SPLASH slot with its online twin unless the
            // user already listed one.
            if regime == "drift"
                && *name == "splash"
                && !model_names.contains(&"splash+online")
            {
                slots.push(scenario_model("splash+online")?);
            }
        }
        specs.push(ScenarioSpec { regime: regime.to_string(), dataset, models: slots });
    }

    let scfg = ScenarioConfig {
        splash: cfg,
        online: OnlineConfig {
            policy: FineTunePolicy::EveryLabels(every),
            buffer_capacity: 128,
            batch_size: 16,
            steps_per_tune: 5,
            lr: 5e-3,
        },
        timing,
    };
    let report = run_matrix(&specs, &scfg).map_err(|e| ArgError(e.to_string()))?;

    let mut out = report.to_markdown();
    if let Some(dir) = out_dir {
        let dir = Path::new(&dir);
        std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("{}: {e}", dir.display())))?;
        let write = |name: &str, body: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).map_err(|e| ArgError(format!("{}: {e}", path.display())))
        };
        write("report.json", &report.to_json())?;
        write("report.md", &report.to_markdown())?;
        let _ = writeln!(out, "\nwrote {}/report.json and {}/report.md", dir.display(), dir.display());
    }
    Ok(out)
}

fn cmd_drift(args: &Args) -> Result<String, ArgError> {
    let (dataset, _) = load_from(args)?;
    let buckets: usize = args.get_parsed("buckets", 8)?;
    if buckets == 0 {
        return Err(ArgError("--buckets must be positive".into()));
    }
    let mut report = String::new();
    let _ = writeln!(
        report,
        "distribution-shift diagnostics for {} ({buckets} time buckets)",
        dataset.name
    );

    // Positional drift of arrival cohorts in node2vec space.
    let snap = ctdg::GraphSnapshot::from_stream_prefix(&dataset.stream, dataset.stream.len());
    let emb = embed::node2vec(&snap, &embed::Node2VecConfig::fast(16), 7);
    let cohorts = datasets::cohort_drift(&dataset, &emb, buckets);
    let _ = writeln!(
        report,
        "positional : cumulative cohort drift {:.4} (cohort sizes {:?})",
        cohorts.cumulative_drift, cohorts.counts
    );

    let deg = datasets::degree_trend(&dataset, buckets);
    let _ = writeln!(
        report,
        "structural : avg degree {}",
        deg.iter().map(|d| format!("{d:.1}")).collect::<Vec<_>>().join(" → ")
    );
    let pr = datasets::pagerank_concentration_trend(&dataset, buckets);
    let _ = writeln!(
        report,
        "structural : top-decile PageRank mass {}",
        pr.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(" → ")
    );

    if dataset.task != Task::Affinity {
        // Property shift: per-class occupancy of the most drifting class.
        let drifts: Vec<(usize, f64)> = (0..dataset.num_classes)
            .map(|c| {
                let trend = datasets::label_ratio_trend(&dataset, c, buckets);
                let spread = trend.iter().cloned().fold(f64::MIN, f64::max)
                    - trend.iter().cloned().fold(f64::MAX, f64::min);
                (c, spread)
            })
            .collect();
        let (worst_class, spread) = drifts
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap_or((0, 0.0));
        let trend = datasets::label_ratio_trend(&dataset, worst_class, buckets);
        let _ = writeln!(
            report,
            "property   : class {worst_class} ratio {} (spread {spread:.3})",
            trend.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(" → ")
        );
    }
    Ok(report)
}

fn baseline_kind(name: &str) -> Option<BaselineKind> {
    BaselineKind::ALL.into_iter().find(|k| k.name() == name)
}

fn dtdg_kind(name: &str) -> Option<DtdgKind> {
    DtdgKind::ALL.into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert!(dispatch(toks("help")).unwrap().contains("USAGE"));
        assert!(dispatch(vec![]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = dispatch(toks("frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown command"));
    }

    #[test]
    fn unknown_task_and_model_error() {
        assert!(parse_task("anomaly").is_ok());
        assert!(parse_task("nope").is_err());
        assert!(baseline_kind("tgat").is_some());
        assert!(baseline_kind("dida").is_none());
        assert!(dtdg_kind("dida").is_some());
    }

    #[test]
    fn feature_modes_parse() {
        assert_eq!(parse_features("auto").unwrap(), None);
        assert_eq!(parse_features("RF").unwrap(), Some(InputFeatures::RawRandom));
        assert!(parse_features("XYZ").is_err());
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let err = dispatch(toks("generate --dataset nope --out /tmp/x")).unwrap_err();
        assert!(err.0.contains("unknown dataset"));
    }

    #[test]
    fn scenarios_rejects_unknown_regime_and_model() {
        let err = dispatch(toks("scenarios --regimes warp --smoke true")).unwrap_err();
        assert!(err.0.contains("unknown regime"), "{}", err.0);
        let err = dispatch(toks("scenarios --models splash,bogus --smoke true")).unwrap_err();
        assert!(err.0.contains("unknown scenario model"), "{}", err.0);
        let err = dispatch(toks("scenarios --smoke true --frac 0")).unwrap_err();
        assert!(err.0.contains("--frac"), "{}", err.0);
    }

    #[test]
    fn scenarios_renders_na_cell_for_task_mismatch() {
        // SLADE on the (classification) drift regime: the matrix keeps the
        // row and reports the typed refusal instead of aborting.
        let out = dispatch(toks(
            "scenarios --smoke true --regimes drift --frac 0.08 --models splash,slade --seed 3",
        ))
        .unwrap();
        assert!(out.contains("| splash | splash | off |"), "{out}");
        assert!(out.contains("n/a") && out.contains("does not support"), "{out}");
        // The drift regime pairs the frozen slot with its online twin.
        assert!(out.contains("| splash+online | splash | on |"), "{out}");
    }

    #[test]
    fn run_requires_inputs() {
        let err = dispatch(toks("run --task anomaly")).unwrap_err();
        assert!(err.0.contains("--edges"));
    }

    #[test]
    fn serve_requires_a_model_file() {
        let err = dispatch(toks("serve --task anomaly")).unwrap_err();
        assert!(err.0.contains("--model-file"));
    }

    #[test]
    fn listen_flags_fail_fast() {
        // A bad knob errors before any file is opened.
        let err = dispatch(toks(
            "serve --listen 127.0.0.1:0 --deadline-ms nope --model-file /nope.bin \
             --edges /nope.csv --queries /nope.csv --task anomaly",
        ))
        .unwrap_err();
        assert!(err.0.contains("deadline-ms"), "{}", err.0);
        assert!(dispatch(toks("help")).unwrap().contains("--listen"));
    }

    #[test]
    fn late_policies_parse() {
        assert_eq!(parse_late_policy("error").unwrap(), LateEdgePolicy::Error);
        assert_eq!(parse_late_policy("drop").unwrap(), LateEdgePolicy::DropLate);
        assert!(parse_late_policy("panic").is_err());
    }

    #[test]
    fn invalid_config_is_a_rendered_error_not_a_panic() {
        let err = dispatch(toks(
            "run --task anomaly --edges /tmp/x.csv --queries /tmp/y.csv --dv 0",
        ))
        .unwrap_err();
        assert!(err.0.contains("invalid config"), "{}", err.0);
        assert!(err.0.contains("feat_dim"), "{}", err.0);
    }

    #[test]
    fn serve_surfaces_persist_errors() {
        let dir = std::env::temp_dir();
        let base = dir.join(format!("splash-cli-serve-{}", std::process::id()));
        let edges = base.with_extension("edges.csv");
        let queries = base.with_extension("queries.csv");
        let model = base.with_extension("bin");
        std::fs::write(&edges, "src,dst,time,weight\n0,1,1.0,1.0\n1,2,2.0,1.0\n").unwrap();
        std::fs::write(&queries, "node,time,label\n0,1.5,0\n1,2.5,1\n").unwrap();
        std::fs::write(&model, b"NOTAMODEL").unwrap();
        let err = dispatch(
            format!(
                "serve --model-file {} --edges {} --queries {} --task classification",
                model.display(),
                edges.display(),
                queries.display()
            )
            .split_whitespace()
            .map(String::from)
            .collect(),
        )
        .unwrap_err();
        for p in [&edges, &queries, &model] {
            std::fs::remove_file(p).ok();
        }
        assert!(err.0.contains("corrupt model"), "{}", err.0);
    }
}
