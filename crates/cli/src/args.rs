//! A small dependency-free argument parser for the `splash` binary:
//! `--key value` flags and positional arguments, with typed accessors and
//! unknown-flag rejection.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token (the subcommand).
    pub command: Option<String>,
    /// Remaining positional tokens.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// A CLI usage error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (without the program name). Every `--key` must be
    /// followed by a value token.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty flag name '--'".into()));
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{key} expects a value")))?;
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("flag --{key} given twice")));
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String flag value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        let v = self.flags.get(key).map(String::as_str);
        if v.is_some() {
            self.consumed.borrow_mut().push(key.to_string());
        }
        v
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Typed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| ArgError(format!("--{key} {raw:?}: {e}"))),
        }
    }

    /// Errors on any flag that was parsed but never read by the subcommand —
    /// catches typos like `--epoch` for `--epochs`.
    pub fn reject_unused(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.flags.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let a = Args::parse(toks("run extra --epochs 5 --task anomaly")).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.positional, vec!["extra"]);
        assert_eq!(a.get("epochs"), Some("5"));
        assert_eq!(a.get("task"), Some("anomaly"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(toks("run --epochs")).unwrap_err();
        assert!(err.0.contains("--epochs"));
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        let err = Args::parse(toks("run --k 1 --k 2")).unwrap_err();
        assert!(err.0.contains("twice"));
    }

    #[test]
    fn typed_access_with_default() {
        let a = Args::parse(toks("run --k 7")).unwrap();
        assert_eq!(a.get_parsed("k", 10usize).unwrap(), 7);
        assert_eq!(a.get_parsed("epochs", 10usize).unwrap(), 10);
        let bad = Args::parse(toks("run --k nope")).unwrap();
        assert!(bad.get_parsed("k", 1usize).is_err());
    }

    #[test]
    fn unused_flags_are_rejected() {
        let a = Args::parse(toks("run --epoch 5")).unwrap();
        assert!(a.reject_unused().is_err());
        let b = Args::parse(toks("run --epochs 5")).unwrap();
        let _ = b.get("epochs");
        assert!(b.reject_unused().is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(toks("run")).unwrap();
        assert!(a.require("edges").is_err());
    }
}
