//! Command-line interface to the SPLASH reproduction.
//!
//! Six subcommands cover the bring-your-own-data workflow end to end:
//!
//! * `generate` — write any built-in dataset analogue to CSV;
//! * `stats` — Table II-style statistics of a CSV dataset;
//! * `run` — the full SPLASH pipeline (or a fixed-feature SLIM ablation) on
//!   a CSV dataset, printing the selection report and test metric;
//! * `predict` — batch-score the test split with a saved model;
//! * `serve` — streaming deployment through the `SplashService` façade:
//!   load a saved model, replay the post-training period live, report
//!   serving counters and the test metric;
//! * `baseline` — any Table III baseline (or DTDG method) on the same data.
//!
//! Alongside them, `bench` ([`bench::cmd_bench`]) records and checks a
//! machine-keyed performance baseline over the serving hot loops — the
//! regression gate `ci/check.sh` runs.
//!
//! Invalid input — bad configs, corrupt or version-mismatched model
//! files, out-of-order streams — surfaces as rendered `SplashError`
//! messages with exit code 2, never as a panic.
//!
//! The library half is fully testable: [`dispatch`] takes raw argument
//! tokens and returns the rendered report, so integration tests can drive
//! the CLI without spawning processes.

pub mod args;
pub mod bench;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, load_dataset, usage};
