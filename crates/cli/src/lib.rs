//! Command-line interface to the SPLASH reproduction.
//!
//! Four subcommands cover the bring-your-own-data workflow end to end:
//!
//! * `generate` — write any built-in dataset analogue to CSV;
//! * `stats` — Table II-style statistics of a CSV dataset;
//! * `run` — the full SPLASH pipeline (or a fixed-feature SLIM ablation) on
//!   a CSV dataset, printing the selection report and test metric;
//! * `baseline` — any Table III baseline (or DTDG method) on the same data.
//!
//! The library half is fully testable: [`dispatch`] takes raw argument
//! tokens and returns the rendered report, so integration tests can drive
//! the CLI without spawning processes.

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, load_dataset, usage};
