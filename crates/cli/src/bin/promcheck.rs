//! `promcheck` — an in-repo Prometheus text-exposition checker.
//!
//! Two modes:
//!
//! ```text
//! promcheck grammar <file|->            validate an exposition dump
//! promcheck scrape  <addr> <path> [--out FILE]
//!                                       GET http://<addr><path>, print the
//!                                       body (or write it to FILE)
//! ```
//!
//! The grammar mode enforces the text format (version 0.0.4): metric and
//! label name character sets, `# HELP`/`# TYPE` lines declared once and
//! before their samples, the `\\`/`\"`/`\n` label-value escapes, float
//! sample values, duplicate-series rejection, and histogram shape
//! (cumulative non-decreasing `_bucket` lines, a `le="+Inf"` bucket whose
//! value matches `_count`). The CI observability leg scrapes a live
//! `splash serve --listen` server's `GET /metrics` through this binary so
//! the exposition endpoint is pinned by the repo's own tooling, with no
//! external dependency.
//!
//! Exit codes: 0 valid / scraped, 1 validation failure, 2 usage or I/O
//! error.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("grammar") => cmd_grammar(&args[1..]),
        Some("scrape") => cmd_scrape(&args[1..]),
        _ => {
            eprintln!(
                "usage: promcheck grammar <file|->\n       promcheck scrape <addr> <path> [--out FILE]"
            );
            2
        }
    }
}

fn cmd_grammar(args: &[String]) -> i32 {
    let Some(source) = args.first() else {
        eprintln!("usage: promcheck grammar <file|->");
        return 2;
    };
    let text = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("stdin: {e}");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{source}: {e}");
                return 2;
            }
        }
    };
    match validate_exposition(&text) {
        Ok(summary) => {
            println!("ok: {} families, {} samples", summary.families, summary.samples);
            0
        }
        Err(e) => {
            eprintln!("invalid exposition: {e}");
            1
        }
    }
}

fn cmd_scrape(args: &[String]) -> i32 {
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: promcheck scrape <addr> <path> [--out FILE]");
        return 2;
    };
    let out = match args.get(2).map(String::as_str) {
        None => None,
        Some("--out") => match args.get(3) {
            Some(f) => Some(f.clone()),
            None => {
                eprintln!("--out needs a file argument");
                return 2;
            }
        },
        Some(other) => {
            eprintln!("unknown scrape flag {other:?}");
            return 2;
        }
    };
    match http_get(addr, path) {
        Ok(body) => {
            let result = match out {
                Some(f) => std::fs::write(&f, &body).map_err(|e| format!("{f}: {e}")),
                None => std::io::stdout()
                    .write_all(body.as_bytes())
                    .map_err(|e| format!("stdout: {e}")),
            };
            match result {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("{e}");
                    2
                }
            }
        }
        Err(e) => {
            eprintln!("GET http://{addr}{path}: {e}");
            2
        }
    }
}

/// One HTTP/1.1 GET over a plain [`std::net::TcpStream`], body returned
/// as a string. `Connection: close` keeps the read loop trivial; the
/// `Content-Length` header, when present, bounds the body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let timeout = std::time::Duration::from_secs(10);
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let raw = String::from_utf8(raw).map_err(|e| e.to_string())?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response (no header terminator)".to_string())?;
    let status = head.lines().next().unwrap_or("");
    let code = status.split_whitespace().nth(1).unwrap_or("");
    if code != "200" {
        return Err(format!("{status}: {}", body.trim_end()));
    }
    let len = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse::<usize>().ok())
                .flatten()
        })
        .unwrap_or(body.len());
    Ok(body.get(..len).unwrap_or(body).to_string())
}

/// What a valid dump contained, for the one-line `ok:` report.
#[derive(Debug)]
struct ExpositionSummary {
    families: usize,
    samples: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
    Summary,
    Untyped,
}

/// Per-histogram-series state: `(le bound, cumulative count)` in file
/// order, plus the `_count` value once seen.
#[derive(Default)]
struct HistogramSeries {
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
}

/// Validates one text-exposition dump; returns family/sample counts or
/// the first error, prefixed with its 1-based line number.
fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("the last line must end with a newline".into());
    }
    let mut types: BTreeMap<String, FamilyKind> = BTreeMap::new();
    let mut helped: BTreeMap<String, ()> = BTreeMap::new();
    let mut seen_series: BTreeMap<(String, String), ()> = BTreeMap::new();
    let mut histograms: BTreeMap<(String, String), HistogramSeries> = BTreeMap::new();
    let mut sampled: BTreeMap<String, ()> = BTreeMap::new();
    let mut samples = 0usize;

    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, Some(h)))
                .unwrap_or((rest, None));
            check_metric_name(name).map_err(&at)?;
            if helped.insert(name.to_string(), ()).is_some() {
                return Err(at(format!("duplicate # HELP for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at("# TYPE needs a name and a type".into()))?;
            check_metric_name(name).map_err(&at)?;
            let kind = match kind {
                "counter" => FamilyKind::Counter,
                "gauge" => FamilyKind::Gauge,
                "histogram" => FamilyKind::Histogram,
                "summary" => FamilyKind::Summary,
                "untyped" => FamilyKind::Untyped,
                other => return Err(at(format!("unknown metric type {other:?}"))),
            };
            if sampled.contains_key(name) {
                return Err(at(format!("# TYPE for {name} after its samples")));
            }
            if types.insert(name.to_string(), kind).is_some() {
                return Err(at(format!("duplicate # TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        let sample = parse_sample(line).map_err(&at)?;
        samples += 1;
        let (family, suffix) = resolve_family(&sample.name, &types)
            .ok_or_else(|| at(format!("sample {} has no preceding # TYPE", sample.name)))?;
        sampled.insert(family.clone(), ());
        let series_key = (sample.name.clone(), sample.labels_joined());
        if seen_series.insert(series_key, ()).is_some() {
            return Err(at(format!("duplicate series {}", sample.name)));
        }

        if types.get(&family) == Some(&FamilyKind::Histogram) {
            let base_labels = sample.labels_joined_without("le");
            let entry = histograms.entry((family.clone(), base_labels)).or_default();
            match suffix {
                "_bucket" => {
                    let le = sample
                        .label("le")
                        .ok_or_else(|| at(format!("{}_bucket without an le label", family)))?;
                    let bound = parse_float(le)
                        .map_err(|e| at(format!("le={le:?}: {e}")))?;
                    if let Some(&(prev_bound, prev_cum)) = entry.buckets.last() {
                        // NaN bounds are incomparable and must fail too.
                        if bound.partial_cmp(&prev_bound) != Some(std::cmp::Ordering::Greater) {
                            return Err(at(format!(
                                "{family} buckets out of order: le {bound} after {prev_bound}"
                            )));
                        }
                        if sample.value < prev_cum {
                            return Err(at(format!(
                                "{family} cumulative bucket count decreased ({} < {prev_cum})",
                                sample.value
                            )));
                        }
                    }
                    entry.buckets.push((bound, sample.value));
                }
                "_count" => entry.count = Some(sample.value),
                "_sum" | "" => {}
                other => {
                    return Err(at(format!("unexpected histogram suffix {other:?}")));
                }
            }
        }
    }

    for ((family, labels), h) in &histograms {
        let place = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        let Some(&(last_bound, last_cum)) = h.buckets.last() else {
            return Err(format!("histogram {place} has no _bucket samples"));
        };
        if !last_bound.is_infinite() {
            return Err(format!("histogram {place} is missing the le=\"+Inf\" bucket"));
        }
        match h.count {
            None => return Err(format!("histogram {place} is missing its _count sample")),
            Some(c) if c != last_cum => {
                return Err(format!(
                    "histogram {place}: _count {c} != +Inf bucket {last_cum}"
                ))
            }
            Some(_) => {}
        }
    }

    Ok(ExpositionSummary { families: types.len(), samples })
}

/// Maps a sample name to its declared family: exact match first, then the
/// histogram/summary component suffixes. Returns `(family, suffix)`.
fn resolve_family(
    name: &str,
    types: &BTreeMap<String, FamilyKind>,
) -> Option<(String, &'static str)> {
    if types.contains_key(name) {
        return Some((name.to_string(), ""));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            match types.get(base) {
                Some(FamilyKind::Histogram) => return Some((base.to_string(), suffix)),
                Some(FamilyKind::Summary) if suffix != "_bucket" => {
                    return Some((base.to_string(), suffix))
                }
                _ => {}
            }
        }
    }
    None
}

fn check_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(())
}

fn check_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("invalid label name {name:?}"));
    }
    Ok(())
}

/// Accepts the Go float forms the exposition format allows, on top of
/// Rust's own: `+Inf`, `-Inf`, `NaN` (any case).
fn parse_float(raw: &str) -> Result<f64, String> {
    raw.parse::<f64>().map_err(|_| format!("not a float: {raw:?}"))
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn labels_joined(&self) -> String {
        self.labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn labels_joined_without(&self, skip: &str) -> String {
        self.labels
            .iter()
            .filter(|(k, _)| k != skip)
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Parses `name{label="value",...} value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or_else(|| format!("sample line has no value: {line:?}"))?;
    let name = &line[..name_end];
    check_metric_name(name)?;

    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        let close = rest
            .find('}')
            .ok_or_else(|| format!("unterminated label set: {line:?}"))?;
        let body = &rest[1..close];
        rest = &rest[close + 1..];
        let mut cursor = body;
        while !cursor.is_empty() {
            let eq = cursor
                .find('=')
                .ok_or_else(|| format!("label without '=': {cursor:?}"))?;
            let lname = &cursor[..eq];
            check_label_name(lname)?;
            let after = &cursor[eq + 1..];
            if !after.starts_with('"') {
                return Err(format!("label value for {lname} is not quoted"));
            }
            let (value, used) = parse_quoted(&after[1..])
                .map_err(|e| format!("label {lname}: {e}"))?;
            labels.push((lname.to_string(), value));
            cursor = &after[1 + used..];
            if let Some(tail) = cursor.strip_prefix(',') {
                cursor = tail;
                if cursor.is_empty() {
                    return Err("trailing comma in label set".into());
                }
            } else if !cursor.is_empty() {
                return Err(format!("junk after label value: {cursor:?}"));
            }
        }
    }

    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("no space before the sample value: {line:?}"))?;
    let mut parts = rest.split(' ');
    let value_raw = parts.next().filter(|s| !s.is_empty()).ok_or("missing sample value")?;
    let value = parse_float(value_raw)?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>().map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("junk after the sample value: {line:?}"));
    }
    Ok(Sample { name: name.to_string(), labels, value })
}

/// Consumes an escaped label value up to (and including) its closing
/// quote; returns the unescaped value and the byte count consumed.
fn parse_quoted(s: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut it = s.char_indices();
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match it.next() {
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, other)) => return Err(format!("invalid escape \\{other}")),
                None => return Err("dangling backslash".into()),
            },
            '\n' => return Err("raw newline inside a label value".into()),
            other => out.push(other),
        }
    }
    Err("unterminated label value".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_dump() {
        let text = "\
# HELP splash_queries_served_total Queries answered.
# TYPE splash_queries_served_total counter
splash_queries_served_total 42
# HELP splash_request_latency_seconds End-to-end latency.
# TYPE splash_request_latency_seconds histogram
splash_request_latency_seconds_bucket{le=\"0.001\"} 3
splash_request_latency_seconds_bucket{le=\"0.01\"} 7
splash_request_latency_seconds_bucket{le=\"+Inf\"} 9
splash_request_latency_seconds_sum 0.5
splash_request_latency_seconds_count 9
# HELP splash_shard_queries_total Per-shard queries.
# TYPE splash_shard_queries_total counter
splash_shard_queries_total{model=\"a b\",shard=\"0\"} 1
splash_shard_queries_total{model=\"a b\",shard=\"1\"} 2
";
        let s = validate_exposition(text).unwrap();
        assert_eq!((s.families, s.samples), (3, 8));
    }

    #[test]
    fn rejects_structural_errors() {
        for (text, needle) in [
            ("splash_x_total 1\n", "no preceding # TYPE"),
            ("# TYPE x counter\nx 1\n# TYPE x counter\n", "after its samples"),
            ("# TYPE x counter\nx 1\nx 1\n", "duplicate series"),
            ("# TYPE x counter\nx{le=\"a} 1\n", "unterminated"),
            ("# TYPE x counter\nx nope\n", "not a float"),
            ("# TYPE x counter\nx 1", "end with a newline"),
            ("# TYPE 9bad counter\n", "invalid metric name"),
            ("# TYPE x counter\nx{v=\"a\\q\"} 1\n", "invalid escape"),
        ] {
            let err = validate_exposition(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn rejects_histogram_shape_violations() {
        let missing_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_sum 1.0
h_count 2
";
        assert!(validate_exposition(missing_inf).unwrap_err().contains("+Inf"));

        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1.0
h_count 5
";
        assert!(validate_exposition(decreasing).unwrap_err().contains("decreased"));

        let count_mismatch = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 1.0
h_count 4
";
        assert!(validate_exposition(count_mismatch).unwrap_err().contains("!="));
    }

    #[test]
    fn label_escapes_round_trip() {
        let (v, used) = parse_quoted("a\\\\b\\\"c\\n\" tail").unwrap();
        assert_eq!(v, "a\\b\"c\n");
        assert_eq!(&"a\\\\b\\\"c\\n\" tail"[used..], " tail");
    }

    #[test]
    fn histogram_series_split_by_labels() {
        // Two labelled histogram series validate independently.
        let text = "\
# TYPE h histogram
h_bucket{model=\"a\",le=\"+Inf\"} 2
h_sum{model=\"a\"} 0.1
h_count{model=\"a\"} 2
h_bucket{model=\"b\",le=\"+Inf\"} 7
h_sum{model=\"b\"} 0.2
h_count{model=\"b\"} 7
";
        assert!(validate_exposition(text).is_ok());
    }
}
