//! The `splash bench` subcommand: a perf-baseline gate over the serving
//! hot loops, borrowing the baseline-command idiom (record once, check
//! forever) so throughput and zero-allocation invariants are enforced by
//! CI instead of hand-read JSON files.
//!
//! `--baseline FILE` runs the workloads and writes a machine-keyed
//! baseline: per-bench wall time (minimum over iterations — robust to
//! scheduler noise) and the steady-state allocator-call count.
//! `--check FILE` re-runs the same workloads and fails (exit 2 through
//! the usual [`ArgError`] path) on a >15% time regression in any bench
//! or on **any** steady-state allocation-count increase. Baselines are
//! machine-keyed (`os-arch-<cores>cores`); comparing across machines is
//! refused rather than silently noisy.
//!
//! The workloads are the serving hot loops the BENCH_*.json files track:
//! single-engine query + ingest, and the sharded routed-ingest /
//! scatter–gather paths at 1/2/4/8 shards — the shape whose O(shards)
//! witness sweep PR 10 removed.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ctdg::{Label, PropertyQuery, TemporalEdge};
use splash::{
    seen_end_time, FeatureProcess, ShardedPredictor, SplashConfig, StreamingPredictor,
    SEEN_FRAC,
};

use crate::args::{ArgError, Args};

/// Counts every allocation/reallocation that reaches the global
/// allocator. The `splash` binary installs it via `#[global_allocator]`
/// (see `main.rs`); when the library is driven without it (unit tests),
/// counts read as zero and the alloc gate is vacuous — the real gate is
/// the binary `ci/check.sh` runs.
pub struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: std::alloc::Layout,
        new_size: usize,
    ) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

/// Runs `f` once and returns how many allocator calls it made.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// The key a baseline is valid for: recorded numbers from a different
/// OS/arch/core-count are incomparable, so `--check` refuses them.
fn machine_key() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("{}-{}-{cores}cores", std::env::consts::OS, std::env::consts::ARCH)
}

/// One measured workload: minimum wall time over the iterations (ns) and
/// the steady-state allocator-call count of a single pass.
struct Measurement {
    name: String,
    ns: u64,
    allocs: u64,
}

/// Times `f` as min-of-`iters` after the caller has warmed it up.
fn time_min(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Runs the full workload suite. `iters` trades precision for runtime;
/// the default (7) keeps the whole suite under ~10s on the CI container.
fn run_suite(iters: usize) -> Vec<Measurement> {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(50, 8), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let base = StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    let n_nodes = dataset.stream.num_nodes() as u32;
    let redate = |replay: &mut Vec<TemporalEdge>, t0: f64| {
        for (i, e) in replay.iter_mut().enumerate() {
            e.time = t0 + i as f64;
        }
    };

    let mut out = Vec::new();

    // Single-engine query path: the k-NN capture + SLIM forward per query.
    {
        let mut single = base.clone();
        single.try_push_edges(&tail).unwrap();
        let t0 = single.last_time();
        let mut logits = Vec::new();
        for i in 0..64u32 {
            single.try_predict_into((i * 7) % n_nodes, t0 + i as f64, &mut logits).unwrap();
        }
        let allocs = count_allocs(|| {
            for i in 0..64u32 {
                single.try_predict_into((i * 7) % n_nodes, t0 + i as f64, &mut logits).unwrap();
            }
        });
        let ns = time_min(iters, || {
            for i in 0..64u32 {
                single.try_predict_into((i * 7) % n_nodes, t0 + i as f64, &mut logits).unwrap();
            }
        });
        out.push(Measurement { name: "predict_single_x64".into(), ns, allocs });
    }

    // Routed ingest and scatter–gather prediction at each shard count —
    // the serial-overhead shape the shared witness flattened.
    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ShardedPredictor::from_predictor(base.clone(), shards).unwrap();
        let mut replay = tail.clone();
        for _ in 0..2 {
            redate(&mut replay, sharded.last_time());
            sharded.try_push_edges(&replay).unwrap();
        }
        redate(&mut replay, sharded.last_time());
        let allocs = count_allocs(|| sharded.try_push_edges(&replay).unwrap());
        let ns = time_min(iters, || {
            redate(&mut replay, sharded.last_time());
            sharded.try_push_edges(&replay).unwrap();
        });
        out.push(Measurement { name: format!("shard_ingest_n{shards}"), ns, allocs });

        let t0 = sharded.last_time();
        let queries: Vec<PropertyQuery> = (0..256u32)
            .map(|i| PropertyQuery {
                node: (i * 7) % (n_nodes + 20),
                time: t0 + i as f64,
                label: Label::Class(0),
            })
            .collect();
        let mut gathered = nn::Matrix::default();
        for _ in 0..4 {
            sharded.try_predict_batch_into(&queries, &mut gathered).unwrap();
        }
        let allocs = count_allocs(|| {
            sharded.try_predict_batch_into(&queries, &mut gathered).unwrap();
        });
        let ns = time_min(iters, || {
            sharded.try_predict_batch_into(&queries, &mut gathered).unwrap();
        });
        out.push(Measurement { name: format!("shard_predict_n{shards}"), ns, allocs });
    }
    out
}

/// Renders the baseline file: one flat JSON object, hand-rolled (the
/// workspace has no serde) — `machine` plus `<bench>.ns` / `<bench>.allocs`
/// number entries, keys sorted by construction order.
fn render_json(machine: &str, suite: &[Measurement]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"machine\": \"{machine}\",");
    for (i, m) in suite.iter().enumerate() {
        let comma = if i + 1 == suite.len() { "" } else { "," };
        let _ = writeln!(s, "  \"{}.ns\": {},", m.name, m.ns);
        let _ = writeln!(s, "  \"{}.allocs\": {}{comma}", m.name, m.allocs);
    }
    s.push_str("}\n");
    s
}

/// Parses the flat baseline JSON written by [`render_json`]: string or
/// integer values only, no nesting. Tolerant of whitespace, strict about
/// shape — anything else is a typed [`ArgError`] naming the file.
fn parse_json(path: &Path, raw: &str) -> Result<(String, Vec<(String, u64)>), ArgError> {
    let err = |what: &str| ArgError(format!("{}: {what}", path.display()));
    let body = raw.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| err("not a JSON object"))?;
    let mut machine = None;
    let mut entries = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part.split_once(':').ok_or_else(|| err("entry without ':'"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| err("unquoted key"))?;
        let value = value.trim();
        if key == "machine" {
            let v = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| err("machine value must be a string"))?;
            machine = Some(v.to_string());
        } else {
            let n: u64 = value
                .parse()
                .map_err(|_| err(&format!("non-integer value for {key:?}")))?;
            entries.push((key.to_string(), n));
        }
    }
    let machine = machine.ok_or_else(|| err("missing \"machine\" key"))?;
    if entries.is_empty() {
        return Err(err("no benchmark entries"));
    }
    Ok((machine, entries))
}

/// Allowed wall-time regression before `--check` fails. Allocation counts
/// allow zero slack: a steady-state alloc is a bug, not noise.
const TIME_SLACK: f64 = 0.15;

/// The `splash bench` subcommand.
pub fn cmd_bench(args: &Args) -> Result<String, ArgError> {
    let iters = args.get_parsed("iters", 7usize)?;
    if iters == 0 {
        return Err(ArgError("--iters must be positive".into()));
    }
    let baseline_out = args.get("baseline").map(str::to_string);
    let check_against = args.get("check").map(str::to_string);
    match (&baseline_out, &check_against) {
        (Some(_), Some(_)) => {
            return Err(ArgError("--baseline and --check are mutually exclusive".into()))
        }
        (None, None) => {
            return Err(ArgError(
                "bench needs --baseline FILE (record) or --check FILE (compare)".into(),
            ))
        }
        _ => {}
    }

    let machine = machine_key();
    let suite = run_suite(iters);
    let mut report = String::new();
    let _ = writeln!(report, "splash bench — machine {machine}, min of {iters} iterations");
    for m in &suite {
        let _ = writeln!(
            report,
            "  {:<22} {:>12.1} µs   {:>6} allocs steady-state",
            m.name,
            m.ns as f64 / 1_000.0,
            m.allocs
        );
    }

    if let Some(path) = baseline_out {
        let path = Path::new(&path);
        std::fs::write(path, render_json(&machine, &suite))
            .map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
        let _ = writeln!(report, "baseline written to {}", path.display());
        return Ok(report);
    }

    let path_raw = check_against.expect("checked above");
    let path = Path::new(&path_raw);
    let raw = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
    let (base_machine, base_entries) = parse_json(path, &raw)?;
    if base_machine != machine {
        return Err(ArgError(format!(
            "baseline {} was recorded on {base_machine:?} but this machine is \
             {machine:?} — cross-machine numbers are not comparable; re-record \
             with --baseline",
            path.display()
        )));
    }

    let mut failures = Vec::new();
    for (key, want) in &base_entries {
        let Some((name, kind)) = key.rsplit_once('.') else {
            return Err(ArgError(format!("{}: malformed key {key:?}", path.display())));
        };
        let Some(m) = suite.iter().find(|m| m.name == name) else {
            failures.push(format!("{name}: in the baseline but no longer measured"));
            continue;
        };
        match kind {
            "ns" => {
                let got = m.ns as f64;
                let limit = *want as f64 * (1.0 + TIME_SLACK);
                if got > limit {
                    failures.push(format!(
                        "{name}: {:.1} µs vs baseline {:.1} µs (+{:.0}% > {:.0}% allowed)",
                        got / 1_000.0,
                        *want as f64 / 1_000.0,
                        (got / *want as f64 - 1.0) * 100.0,
                        TIME_SLACK * 100.0
                    ));
                }
            }
            "allocs" => {
                if m.allocs > *want {
                    failures.push(format!(
                        "{name}: {} steady-state allocs vs baseline {} (any increase fails)",
                        m.allocs, want
                    ));
                }
            }
            other => {
                return Err(ArgError(format!(
                    "{}: unknown metric {other:?} in key {key:?}",
                    path.display()
                )))
            }
        }
    }
    if failures.is_empty() {
        let _ = writeln!(
            report,
            "check passed against {} ({} entries)",
            path.display(),
            base_entries.len()
        );
        Ok(report)
    } else {
        let mut msg = format!("bench check failed against {}:\n", path.display());
        for f in &failures {
            let _ = writeln!(msg, "  {f}");
        }
        Err(ArgError(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_machine_guard() {
        let suite = vec![
            Measurement { name: "a".into(), ns: 1_000, allocs: 0 },
            Measurement { name: "b".into(), ns: 2_500, allocs: 3 },
        ];
        let rendered = render_json("linux-x86_64-4cores", &suite);
        let (machine, entries) = parse_json(Path::new("mem"), &rendered).unwrap();
        assert_eq!(machine, "linux-x86_64-4cores");
        assert_eq!(
            entries,
            vec![
                ("a.ns".into(), 1_000),
                ("a.allocs".into(), 0),
                ("b.ns".into(), 2_500),
                ("b.allocs".into(), 3),
            ]
        );
    }

    #[test]
    fn malformed_baselines_are_typed_errors() {
        let p = Path::new("mem");
        assert!(parse_json(p, "not json").is_err());
        assert!(parse_json(p, "{}").is_err());
        assert!(parse_json(p, "{\"machine\": \"m\"}").is_err());
        assert!(parse_json(p, "{\"machine\": \"m\", \"a.ns\": \"str\"}").is_err());
    }
}
