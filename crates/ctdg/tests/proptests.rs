//! Property-based tests for the CTDG substrate invariants.

use ctdg::{
    chronological_split, replay, DegreeTracker, EdgeStream, Event, GraphSnapshot, Label,
    NeighborMemory, PropertyQuery, TemporalEdge,
};
use proptest::prelude::*;

/// Strategy: a chronologically ordered stream over `n` nodes.
fn arb_stream(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = EdgeStream> {
    prop::collection::vec(
        (0..max_nodes, 0..max_nodes, 0.0f64..1000.0, 0.1f32..5.0),
        0..max_edges,
    )
    .prop_map(|mut raw| {
        raw.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let edges = raw
            .into_iter()
            .map(|(s, d, t, w)| TemporalEdge::weighted(s, d, w, t))
            .collect();
        EdgeStream::new(edges).expect("sorted edges must form a valid stream")
    })
}

proptest! {
    #[test]
    fn memory_holds_at_most_k_per_node(stream in arb_stream(12, 80), k in 1usize..6) {
        let mem = NeighborMemory::from_stream_prefix(&stream, stream.len(), k);
        for v in 0..stream.num_nodes() as u32 {
            prop_assert!(mem.count(v) <= k);
            let ns = mem.neighbors(v);
            // chronological order within the memory
            prop_assert!(ns.windows(2).all(|w| w[0].time <= w[1].time));
        }
    }

    #[test]
    fn memory_matches_bruteforce_suffix(stream in arb_stream(8, 60), k in 1usize..5) {
        let mem = NeighborMemory::from_stream_prefix(&stream, stream.len(), k);
        for v in 0..stream.num_nodes() as u32 {
            // Brute force: the last k incident edges by stream order.
            let incident: Vec<usize> = stream
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.touches(v))
                .map(|(i, _)| i)
                .collect();
            let expected: Vec<usize> =
                incident.iter().rev().take(k).rev().copied().collect();
            let got: Vec<usize> = mem.neighbors(v).iter().map(|m| m.edge_idx).collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn degree_total_is_twice_edge_count(stream in arb_stream(10, 100)) {
        let d = DegreeTracker::from_stream_prefix(&stream, stream.len());
        prop_assert_eq!(d.total(), 2 * stream.len() as u64);
        let sum: u64 = (0..stream.num_nodes() as u32).map(|v| d.degree(v)).sum();
        prop_assert_eq!(sum, d.total());
    }

    #[test]
    fn snapshot_weight_symmetric_and_additive(stream in arb_stream(8, 50)) {
        let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
        for u in 0..stream.num_nodes() as u32 {
            for v in 0..stream.num_nodes() as u32 {
                let w_uv = snap.weight(u, v);
                let w_vu = snap.weight(v, u);
                prop_assert!((w_uv - w_vu).abs() < 1e-4);
                // Additivity: matches the sum of raw temporal edge weights.
                let expected: f32 = stream
                    .edges()
                    .iter()
                    .filter(|e| {
                        (e.src == u && e.dst == v) || (e.src == v && e.dst == u)
                    })
                    .map(|e| e.weight)
                    .sum();
                // Avoid double counting (u,v) and (v,u) enumeration overlap at u==v.
                if u <= v {
                    prop_assert!((w_uv - expected).abs() < 1e-3,
                        "weight({u},{v}) = {w_uv}, expected {expected}");
                }
            }
        }
    }

    #[test]
    fn snapshot_monotone_in_prefix(stream in arb_stream(8, 50), cut in 0usize..50) {
        let cut = cut.min(stream.len());
        let small = GraphSnapshot::from_stream_prefix(&stream, cut);
        let full = GraphSnapshot::from_stream_prefix(&stream, stream.len());
        prop_assert!(small.num_edges() <= full.num_edges());
        prop_assert!(small.num_temporal_edges() <= full.num_temporal_edges());
    }

    #[test]
    fn replay_preserves_order_and_counts(
        stream in arb_stream(6, 40),
        qtimes in prop::collection::vec(0.0f64..1000.0, 0..30),
    ) {
        let mut qtimes = qtimes;
        qtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let queries: Vec<PropertyQuery> = qtimes
            .iter()
            .map(|&t| PropertyQuery { node: 0, time: t, label: Label::Class(0) })
            .collect();
        let events = replay(&stream, &queries);
        prop_assert_eq!(events.len(), stream.len() + queries.len());
        prop_assert!(events.windows(2).all(|w| w[0].time() <= w[1].time()));
        // Every query sees all edges at or before its own time.
        let mut edges_seen = 0usize;
        for ev in &events {
            match ev {
                Event::Edge(..) => edges_seen += 1,
                Event::Query(_, q) => {
                    prop_assert_eq!(edges_seen, stream.prefix_len_at(q.time));
                }
            }
        }
    }

    /// A DTDG view is a *partition* of the stream: every temporal edge lands
    /// in exactly one window, and that window's bounds contain its time.
    #[test]
    fn dtdg_partitions_the_stream(stream in arb_stream(10, 80), w in 1usize..8) {
        let view = ctdg::DtdgView::new(&stream, w);
        prop_assert_eq!(view.num_windows(), w);
        prop_assert_eq!(view.total_temporal_edges(), stream.len());
        for edge in stream.edges() {
            let idx = view.window_of(edge.time);
            let (lo, hi) = view.bounds(idx);
            let last = idx == w - 1;
            prop_assert!(
                edge.time >= lo - 1e-9 && (edge.time < hi + 1e-9 || last),
                "edge at {} outside window {idx} [{lo}, {hi})",
                edge.time
            );
        }
        // Per-window weight mass sums to the full snapshot's mass.
        let full = GraphSnapshot::from_stream_prefix(&stream, stream.len());
        let total_weight = |s: &GraphSnapshot| -> f64 {
            (0..s.num_nodes() as u32)
                .flat_map(|v| s.neighbors(v).iter().map(move |&(n, wt)| {
                    // Self-loops appear once, other edges twice.
                    if n == v { wt as f64 } else { wt as f64 / 2.0 }
                }))
                .sum()
        };
        let parts: f64 = view.windows().iter().map(total_weight).sum();
        prop_assert!((parts - total_weight(&full)).abs() < 1e-3);
    }

    /// Window bucketing of event times is monotone and in range.
    #[test]
    fn bucketing_is_monotone(
        times in prop::collection::vec(0.0f64..500.0, 0..40),
        w in 1usize..6,
    ) {
        let mut times = times;
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let buckets = ctdg::bucket_by_window(&times, w);
        prop_assert_eq!(buckets.len(), times.len());
        prop_assert!(buckets.windows(2).all(|x| x[0] <= x[1]));
        prop_assert!(buckets.iter().all(|&b| b < w));
        if !buckets.is_empty() {
            prop_assert_eq!(buckets[0], 0, "the earliest event anchors window 0");
        }
    }

    #[test]
    fn chronological_split_partitions(n in 0usize..200) {
        let queries: Vec<PropertyQuery> = (0..n)
            .map(|i| PropertyQuery { node: 0, time: i as f64, label: Label::Class(0) })
            .collect();
        let parts = chronological_split(&queries, &[0.1, 0.1, 0.8]);
        prop_assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), n);
        // Parts are contiguous and ordered.
        let flat: Vec<f64> = parts.iter().flat_map(|p| p.iter().map(|q| q.time)).collect();
        prop_assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }
}
