//! Temporal edges, edge streams, and node-property queries.

/// Identifier of a node in a CTDG. Node ids are dense `u32` indices.
pub type NodeId = u32;

/// Timestamp of a temporal edge or label query. Timestamps are real-valued
/// and non-decreasing along the stream.
pub type Time = f64;

/// A single temporal edge `δ(n) = (v_i, v_j, x_ij, w_ij, t)` (paper §II-A).
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalEdge {
    /// Source node `v_i`.
    pub src: NodeId,
    /// Destination node `v_j`.
    pub dst: NodeId,
    /// Edge feature `x_ij ∈ R^{d_e}` (empty when the dataset has none).
    pub feat: Box<[f32]>,
    /// Edge weight `w_ij` (1.0 when the dataset has no explicit weights).
    pub weight: f32,
    /// Arrival time `t(n)`.
    pub time: Time,
}

impl TemporalEdge {
    /// Creates a featureless, unit-weight temporal edge.
    pub fn plain(src: NodeId, dst: NodeId, time: Time) -> Self {
        Self { src, dst, feat: Box::new([]), weight: 1.0, time }
    }

    /// Creates a weighted, featureless temporal edge.
    pub fn weighted(src: NodeId, dst: NodeId, weight: f32, time: Time) -> Self {
        Self { src, dst, feat: Box::new([]), weight, time }
    }

    /// Returns the endpoint of this edge other than `node`.
    ///
    /// For self-loops returns the node itself. Callers must pass one of the
    /// two endpoints.
    pub fn other(&self, node: NodeId) -> NodeId {
        if self.src == node {
            self.dst
        } else {
            debug_assert_eq!(self.dst, node, "`other` called with a non-endpoint");
            self.src
        }
    }

    /// Whether `node` is an endpoint of this edge.
    pub fn touches(&self, node: NodeId) -> bool {
        self.src == node || self.dst == node
    }
}

/// Property label of a node at a query time (paper §III).
///
/// The three task instances of node property prediction use two label forms:
/// dynamic node classification and dynamic anomaly detection use
/// [`Label::Class`] (anomaly detection is binary classification with class 1
/// = abnormal), node affinity prediction uses [`Label::Affinity`] — the
/// normalized future affinity of the node to `d_a` candidate nodes.
#[derive(Debug, PartialEq)]
pub enum Label {
    /// Categorical class index in `0..num_classes`.
    Class(usize),
    /// Normalized affinity distribution over candidate nodes (sums to 1
    /// unless all-zero).
    Affinity(Box<[f32]>),
}

impl Clone for Label {
    fn clone(&self) -> Self {
        match self {
            Label::Class(c) => Label::Class(*c),
            Label::Affinity(a) => Label::Affinity(a.clone()),
        }
    }

    /// Allocation-reusing overwrite: a same-length affinity label is copied
    /// into the existing buffer (the online continual-learning path leans
    /// on this for zero-allocation label absorption).
    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (Label::Affinity(dst), Label::Affinity(src)) if dst.len() == src.len() => {
                dst.copy_from_slice(src);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Label {
    /// The class index, panicking for affinity labels.
    pub fn class(&self) -> usize {
        match self {
            Label::Class(c) => *c,
            Label::Affinity(_) => panic!("expected a class label, found an affinity label"),
        }
    }

    /// The affinity vector, panicking for class labels.
    pub fn affinity(&self) -> &[f32] {
        match self {
            Label::Affinity(a) => a,
            Label::Class(_) => panic!("expected an affinity label, found a class label"),
        }
    }
}

/// A node-property label query `(v_i, t, Y_i(t))` (Eq. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyQuery {
    /// The queried node `v_i`.
    pub node: NodeId,
    /// Query time `t`. Predictions may use only edges with `t(l) <= t`.
    pub time: Time,
    /// Ground-truth property `Y_i(t)`.
    pub label: Label,
}

/// Errors raised when constructing an [`EdgeStream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Edge timestamps must be non-decreasing; holds the offending index.
    OutOfOrder(usize),
    /// All edges must carry features of the declared dimension; holds the
    /// offending index.
    FeatDim(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrder(i) => {
                write!(f, "edge {i} has a timestamp smaller than its predecessor")
            }
            StreamError::FeatDim(i) => {
                write!(f, "edge {i} has a feature dimension different from the stream's")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A chronologically ordered stream of temporal edges — the CTDG `G`.
///
/// The stream owns its edges; all other substrate structures
/// ([`crate::GraphSnapshot`], [`crate::NeighborMemory`],
/// [`crate::DegreeTracker`]) are built from (prefixes of) a stream and refer
/// to edges by index.
#[derive(Debug, Clone, Default)]
pub struct EdgeStream {
    edges: Vec<TemporalEdge>,
    num_nodes: usize,
    feat_dim: usize,
}

impl EdgeStream {
    /// Builds a stream, validating chronological order and uniform edge
    /// feature dimensionality.
    pub fn new(edges: Vec<TemporalEdge>) -> Result<Self, StreamError> {
        let feat_dim = edges.first().map_or(0, |e| e.feat.len());
        let mut num_nodes = 0usize;
        let mut prev = Time::NEG_INFINITY;
        for (i, e) in edges.iter().enumerate() {
            if e.time < prev {
                return Err(StreamError::OutOfOrder(i));
            }
            prev = e.time;
            if e.feat.len() != feat_dim {
                return Err(StreamError::FeatDim(i));
            }
            num_nodes = num_nodes.max(e.src as usize + 1).max(e.dst as usize + 1);
        }
        Ok(Self { edges, num_nodes, feat_dim })
    }

    /// Builds a stream without validation. Intended for generators that
    /// construct edges in order by design; debug builds still assert order.
    pub fn new_unchecked(edges: Vec<TemporalEdge>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0].time <= w[1].time));
        let feat_dim = edges.first().map_or(0, |e| e.feat.len());
        let num_nodes = edges
            .iter()
            .map(|e| e.src.max(e.dst) as usize + 1)
            .max()
            .unwrap_or(0);
        Self { edges, num_nodes, feat_dim }
    }

    /// The edges in chronological order.
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Number of edges in the stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of nodes `|V|` (dense id space: `max id + 1`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edge feature dimension `d_e` (0 when features are absent).
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// The edge at stream position `idx`.
    pub fn edge(&self, idx: usize) -> &TemporalEdge {
        &self.edges[idx]
    }

    /// Index of the first edge with `time > t`, i.e. the number of edges in
    /// the prefix `G_{<=t}`.
    pub fn prefix_len_at(&self, t: Time) -> usize {
        self.edges.partition_point(|e| e.time <= t)
    }

    /// Largest timestamp in the stream, or `None` when empty.
    pub fn end_time(&self) -> Option<Time> {
        self.edges.last().map(|e| e.time)
    }

    /// Smallest timestamp in the stream, or `None` when empty.
    pub fn start_time(&self) -> Option<Time> {
        self.edges.first().map(|e| e.time)
    }

    /// Timestamp at the given quantile of the stream's edge positions
    /// (e.g. `0.1` → the time of the edge 10% into the stream). Used for the
    /// chronological 10/10/80 train/val/test split.
    pub fn time_at_fraction(&self, frac: f64) -> Time {
        assert!(!self.edges.is_empty(), "time_at_fraction on an empty stream");
        let idx = ((self.edges.len() as f64 * frac) as usize).min(self.edges.len() - 1);
        self.edges[idx].time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: u32, dst: u32, t: f64) -> TemporalEdge {
        TemporalEdge::plain(src, dst, t)
    }

    #[test]
    fn stream_validates_order() {
        let err = EdgeStream::new(vec![e(0, 1, 2.0), e(1, 2, 1.0)]).unwrap_err();
        assert_eq!(err, StreamError::OutOfOrder(1));
    }

    #[test]
    fn stream_accepts_ties() {
        let s = EdgeStream::new(vec![e(0, 1, 1.0), e(1, 2, 1.0)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_nodes(), 3);
    }

    #[test]
    fn stream_validates_feat_dim() {
        let mut a = e(0, 1, 1.0);
        a.feat = vec![1.0, 2.0].into();
        let b = e(1, 2, 2.0);
        let err = EdgeStream::new(vec![a, b]).unwrap_err();
        assert_eq!(err, StreamError::FeatDim(1));
    }

    #[test]
    fn prefix_len_at_bounds() {
        let s = EdgeStream::new(vec![e(0, 1, 1.0), e(1, 2, 2.0), e(2, 3, 2.0), e(0, 3, 5.0)])
            .unwrap();
        assert_eq!(s.prefix_len_at(0.5), 0);
        assert_eq!(s.prefix_len_at(1.0), 1);
        assert_eq!(s.prefix_len_at(2.0), 3);
        assert_eq!(s.prefix_len_at(4.9), 3);
        assert_eq!(s.prefix_len_at(5.0), 4);
        assert_eq!(s.prefix_len_at(9.0), 4);
    }

    #[test]
    fn other_endpoint() {
        let edge = e(3, 7, 1.0);
        assert_eq!(edge.other(3), 7);
        assert_eq!(edge.other(7), 3);
        assert!(edge.touches(3) && edge.touches(7) && !edge.touches(5));
    }

    #[test]
    fn label_accessors() {
        assert_eq!(Label::Class(4).class(), 4);
        let a = Label::Affinity(vec![0.5, 0.5].into());
        assert_eq!(a.affinity(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "expected a class label")]
    fn label_class_panics_on_affinity() {
        Label::Affinity(Box::new([1.0])).class();
    }

    /// `clone_from` between same-length affinity labels must reuse the
    /// destination's heap buffer (the online label-ingest path pins its
    /// zero-allocation contract on this).
    #[test]
    fn label_clone_from_reuses_same_length_affinity_buffers() {
        let mut dst = Label::Affinity(Box::new([0.0, 0.0, 0.0]));
        let src = Label::Affinity(Box::new([0.1, 0.7, 0.2]));
        let before = dst.affinity().as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.affinity().as_ptr(), before, "buffer must be reused");
        // Mismatched lengths (and kind changes) fall back to a real clone.
        let wider = Label::Affinity(Box::new([0.25; 4]));
        dst.clone_from(&wider);
        assert_eq!(dst, wider);
        dst.clone_from(&Label::Class(2));
        assert_eq!(dst, Label::Class(2));
    }

    #[test]
    fn empty_stream() {
        let s = EdgeStream::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.end_time(), None);
    }

    #[test]
    fn time_at_fraction_monotone() {
        let s = EdgeStream::new((0..100).map(|i| e(0, 1, i as f64)).collect()).unwrap();
        assert_eq!(s.time_at_fraction(0.0), 0.0);
        assert_eq!(s.time_at_fraction(0.5), 50.0);
        assert_eq!(s.time_at_fraction(1.0), 99.0);
    }
}
