//! Per-node memory of the `k` most recent incident temporal edges.
//!
//! TGNNs (and SPLASH's SLIM model) compute a node's representation at time
//! `t` from `N_i(t)`, the `k` most recent temporal edges incident to the node
//! (paper Eq. 6). Keeping only `k` entries per node makes the memory
//! footprint `O(|V| · k)` — sub-linear in the total number of edges, which is
//! the space guarantee the paper inherits from graph-stream processing
//! (§II-E).

use crate::edge::{NodeId, TemporalEdge, Time};

/// One remembered incident edge, as seen from the owning node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemEntry {
    /// Index of the edge in the originating [`crate::EdgeStream`].
    pub edge_idx: usize,
    /// The other endpoint of the edge.
    pub other: NodeId,
    /// Arrival time of the edge.
    pub time: Time,
    /// Weight of the edge.
    pub weight: f32,
}

/// Fixed-capacity ring buffer holding the `k` most recent entries.
#[derive(Debug, Clone, Default)]
struct Ring {
    entries: Vec<MemEntry>,
    /// Position of the oldest entry once the ring is full.
    head: usize,
}

/// The recent-neighbor memory `N_i(t)` for every node.
///
/// Updated incrementally, one temporal edge at a time, in `O(1)` per
/// endpoint. Reads return entries in chronological (oldest → newest) order.
#[derive(Debug, Clone)]
pub struct NeighborMemory {
    rings: Vec<Ring>,
    k: usize,
    last_time: Time,
    edges_seen: usize,
}

impl NeighborMemory {
    /// Creates a memory keeping the `k` most recent incident edges per node.
    /// `num_nodes_hint` pre-sizes the node table; it grows on demand.
    pub fn new(num_nodes_hint: usize, k: usize) -> Self {
        assert!(k > 0, "neighbor memory capacity k must be positive");
        Self {
            rings: vec![Ring::default(); num_nodes_hint],
            k,
            last_time: Time::NEG_INFINITY,
            edges_seen: 0,
        }
    }

    /// The per-node capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of edges ingested so far.
    pub fn edges_seen(&self) -> usize {
        self.edges_seen
    }

    /// Arrival time of the most recently ingested edge.
    pub fn last_time(&self) -> Time {
        self.last_time
    }

    fn ensure(&mut self, node: NodeId) {
        let need = node as usize + 1;
        if self.rings.len() < need {
            self.rings.resize(need, Ring::default());
        }
    }

    fn push(&mut self, node: NodeId, entry: MemEntry) {
        self.ensure(node);
        let k = self.k;
        let ring = &mut self.rings[node as usize];
        if ring.entries.len() < k {
            ring.entries.push(entry);
        } else {
            ring.entries[ring.head] = entry;
            ring.head = (ring.head + 1) % k;
        }
    }

    /// Ingests one temporal edge, updating both endpoints' memories.
    ///
    /// `edge_idx` is the edge's position in its stream; edges must be fed in
    /// chronological order.
    pub fn update(&mut self, edge_idx: usize, edge: &TemporalEdge) {
        debug_assert!(
            edge.time >= self.last_time,
            "edges must be ingested chronologically"
        );
        self.last_time = edge.time;
        self.edges_seen += 1;
        self.push(
            edge.src,
            MemEntry { edge_idx, other: edge.dst, time: edge.time, weight: edge.weight },
        );
        if edge.src != edge.dst {
            self.push(
                edge.dst,
                MemEntry { edge_idx, other: edge.src, time: edge.time, weight: edge.weight },
            );
        }
    }

    /// The remembered entries for `node`, oldest first. Empty for nodes not
    /// yet seen.
    pub fn neighbors(&self, node: NodeId) -> Vec<MemEntry> {
        match self.rings.get(node as usize) {
            None => Vec::new(),
            Some(ring) => {
                let n = ring.entries.len();
                (0..n)
                    .map(|i| ring.entries[(ring.head + i) % n.max(1)])
                    .collect()
            }
        }
    }

    /// Number of remembered entries for `node` (`min(degree, k)`).
    pub fn count(&self, node: NodeId) -> usize {
        self.rings.get(node as usize).map_or(0, |r| r.entries.len())
    }

    /// Calls `f` for each remembered entry of `node`, oldest first, without
    /// allocating.
    pub fn for_each(&self, node: NodeId, mut f: impl FnMut(&MemEntry)) {
        if let Some(ring) = self.rings.get(node as usize) {
            let n = ring.entries.len();
            for i in 0..n {
                f(&ring.entries[(ring.head + i) % n]);
            }
        }
    }

    /// Builds a memory from a stream prefix of `prefix_len` edges.
    pub fn from_stream_prefix(
        stream: &crate::EdgeStream,
        prefix_len: usize,
        k: usize,
    ) -> Self {
        let mut mem = Self::new(stream.num_nodes(), k);
        for (idx, edge) in stream.edges()[..prefix_len.min(stream.len())].iter().enumerate() {
            mem.update(idx, edge);
        }
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{EdgeStream, TemporalEdge};

    fn e(src: u32, dst: u32, t: f64) -> TemporalEdge {
        TemporalEdge::plain(src, dst, t)
    }

    #[test]
    fn keeps_k_most_recent() {
        let mut mem = NeighborMemory::new(4, 2);
        mem.update(0, &e(0, 1, 1.0));
        mem.update(1, &e(0, 2, 2.0));
        mem.update(2, &e(0, 3, 3.0));
        let ns = mem.neighbors(0);
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0].other, 2);
        assert_eq!(ns[1].other, 3);
        assert_eq!(ns[0].time, 2.0);
    }

    #[test]
    fn chronological_order_preserved() {
        let mut mem = NeighborMemory::new(1, 5);
        for (i, t) in [3.0, 4.0, 7.0].iter().enumerate() {
            mem.update(i, &e(0, (i + 1) as u32, *t));
        }
        let ns = mem.neighbors(0);
        assert!(ns.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn both_endpoints_updated() {
        let mut mem = NeighborMemory::new(2, 3);
        mem.update(0, &e(0, 1, 1.0));
        assert_eq!(mem.count(0), 1);
        assert_eq!(mem.count(1), 1);
        assert_eq!(mem.neighbors(1)[0].other, 0);
    }

    #[test]
    fn self_loop_counted_once() {
        let mut mem = NeighborMemory::new(1, 3);
        mem.update(0, &e(0, 0, 1.0));
        assert_eq!(mem.count(0), 1);
    }

    #[test]
    fn grows_for_unseen_nodes() {
        let mut mem = NeighborMemory::new(0, 2);
        mem.update(0, &e(100, 200, 1.0));
        assert_eq!(mem.count(100), 1);
        assert_eq!(mem.count(200), 1);
        assert_eq!(mem.count(50), 0);
    }

    #[test]
    fn from_stream_prefix_matches_incremental() {
        let stream = EdgeStream::new(vec![e(0, 1, 1.0), e(1, 2, 2.0), e(0, 2, 3.0)]).unwrap();
        let full = NeighborMemory::from_stream_prefix(&stream, 3, 2);
        let partial = NeighborMemory::from_stream_prefix(&stream, 2, 2);
        assert_eq!(full.neighbors(0).len(), 2);
        assert_eq!(partial.neighbors(0).len(), 1);
        assert_eq!(full.edges_seen(), 3);
    }

    #[test]
    fn for_each_matches_neighbors() {
        let mut mem = NeighborMemory::new(1, 3);
        for (i, t) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            mem.update(i, &e(0, i as u32 + 1, *t));
        }
        let mut collected = Vec::new();
        mem.for_each(0, |m| collected.push(*m));
        assert_eq!(collected, mem.neighbors(0));
    }
}
