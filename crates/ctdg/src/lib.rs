//! Continuous-time dynamic graph (CTDG) substrate.
//!
//! This crate implements the data structures from Section II-A of the SPLASH
//! paper (Lee et al., ICDE 2025):
//!
//! * [`TemporalEdge`] / [`EdgeStream`] — the chronologically ordered stream of
//!   temporal edges `δ(n) = (v_i, v_j, x_ij, w_ij, t)`;
//! * [`GraphSnapshot`] — the accumulated snapshot `G(n) = (V(n), E(n), Ω(n))`
//!   with the additive edge-weight function `Ω`;
//! * [`NeighborMemory`] — the per-node memory `N_i(t)` of the `k` most recent
//!   incident temporal edges, the only state a trained model needs at
//!   inference time (sub-linear in the total edge count);
//! * [`DegreeTracker`] — incremental node degrees (Eq. 2);
//! * chronological splitting utilities for property-query sets (Eq. 9) and a
//!   merged [`replay`](fn@replay) of edges and label queries (Fig. 4);
//! * [`DtdgView`] — the discrete-time (snapshot-sequence) view consumed by
//!   the DTDG-based shift-robust baselines of Fig. 12 (DIDA, SLID).

pub mod degree;
pub mod dtdg;
pub mod edge;
pub mod memory;
pub mod replay;
pub mod snapshot;
pub mod split;

pub use degree::DegreeTracker;
pub use dtdg::{bucket_by_window, DtdgView};
pub use edge::{EdgeStream, Label, NodeId, PropertyQuery, TemporalEdge, Time};
pub use memory::{MemEntry, NeighborMemory};
pub use replay::{replay, Event};
pub use snapshot::GraphSnapshot;
pub use split::{chronological_split, split_at_fraction, split_at_time, train_val_test};
