//! Accumulated graph snapshots `G(n) = (V(n), E(n), Ω(n))` (paper §II-A).
//!
//! A snapshot materializes the prefix of an edge stream as a static weighted
//! graph: the node set, the de-duplicated edge set, and the additive edge
//! weight function `Ω` that sums the weights of repeated temporal edges.
//! Snapshots are only ever built for the *training* prefix (the paper assumes
//! training-period edges are few enough to keep, §IV-A-2); test-time
//! processing uses the incremental structures instead.

use std::collections::HashMap;

use crate::edge::{EdgeStream, NodeId};

/// A static weighted view of a stream prefix, with adjacency lists.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    /// `adj[v]` lists `(neighbor, accumulated weight)` pairs; the graph is
    /// treated as undirected for embedding purposes, so every temporal edge
    /// appears in both endpoints' lists.
    adj: Vec<Vec<(NodeId, f32)>>,
    num_edges: usize,
    num_temporal_edges: usize,
}

impl GraphSnapshot {
    /// Builds the snapshot of the first `prefix_len` edges of `stream`.
    pub fn from_stream_prefix(stream: &EdgeStream, prefix_len: usize) -> Self {
        let prefix_len = prefix_len.min(stream.len());
        Self::from_edges(stream.num_nodes(), &stream.edges()[..prefix_len])
    }

    /// Builds the snapshot of an arbitrary edge slice over a dense id space
    /// of `num_nodes` slots. Used by [`crate::dtdg::DtdgView`] to materialize
    /// per-window (non-cumulative) snapshots.
    pub fn from_edges(num_nodes: usize, edges: &[crate::edge::TemporalEdge]) -> Self {
        let n = num_nodes;
        let prefix_len = edges.len();
        // Accumulate Ω((u, v)) over the de-duplicated undirected edge set.
        let mut weights: HashMap<(NodeId, NodeId), f32> = HashMap::new();
        for edge in edges {
            let key = if edge.src <= edge.dst {
                (edge.src, edge.dst)
            } else {
                (edge.dst, edge.src)
            };
            *weights.entry(key).or_insert(0.0) += edge.weight;
        }
        let mut adj = vec![Vec::new(); n];
        for (&(u, v), &w) in &weights {
            adj[u as usize].push((v, w));
            if u != v {
                adj[v as usize].push((u, w));
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(nbr, _)| nbr);
        }
        Self { adj, num_edges: weights.len(), num_temporal_edges: prefix_len }
    }

    /// Builds the snapshot of all edges with `time <= t`.
    pub fn at_time(stream: &EdgeStream, t: f64) -> Self {
        Self::from_stream_prefix(stream, stream.prefix_len_at(t))
    }

    /// Number of node slots (dense id space of the originating stream).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct (undirected) edges `|E(n)|`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of temporal edges accumulated into this snapshot.
    pub fn num_temporal_edges(&self) -> usize {
        self.num_temporal_edges
    }

    /// The `(neighbor, Ω-weight)` adjacency list of `node`, sorted by
    /// neighbor id.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, f32)] {
        self.adj
            .get(node as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Static degree of `node`: the number of distinct neighbors.
    pub fn static_degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Accumulated weight `Ω((u, v))`, 0 when the edge is absent.
    pub fn weight(&self, u: NodeId, v: NodeId) -> f32 {
        self.neighbors(u)
            .binary_search_by_key(&v, |&(nbr, _)| nbr)
            .map(|i| self.neighbors(u)[i].1)
            .unwrap_or(0.0)
    }

    /// Nodes that have at least one incident edge in the snapshot.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        (0..self.adj.len() as NodeId)
            .filter(|&v| !self.adj[v as usize].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::TemporalEdge;

    fn stream() -> EdgeStream {
        EdgeStream::new(vec![
            TemporalEdge::weighted(0, 1, 1.0, 1.0),
            TemporalEdge::weighted(1, 0, 2.0, 2.0), // same undirected edge, reversed
            TemporalEdge::weighted(1, 2, 0.5, 3.0),
            TemporalEdge::weighted(3, 3, 1.0, 4.0), // self loop
        ])
        .unwrap()
    }

    #[test]
    fn accumulates_weights_across_directions() {
        let s = GraphSnapshot::from_stream_prefix(&stream(), 4);
        assert_eq!(s.weight(0, 1), 3.0);
        assert_eq!(s.weight(1, 0), 3.0);
        assert_eq!(s.weight(1, 2), 0.5);
        assert_eq!(s.weight(0, 2), 0.0);
    }

    #[test]
    fn edge_set_deduplicated() {
        let s = GraphSnapshot::from_stream_prefix(&stream(), 4);
        assert_eq!(s.num_edges(), 3); // {0,1}, {1,2}, {3,3}
        assert_eq!(s.num_temporal_edges(), 4);
    }

    #[test]
    fn prefix_respected() {
        let s = GraphSnapshot::from_stream_prefix(&stream(), 1);
        assert_eq!(s.weight(0, 1), 1.0);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn at_time_uses_inclusive_prefix() {
        let s = GraphSnapshot::at_time(&stream(), 2.0);
        assert_eq!(s.num_temporal_edges(), 2);
        assert_eq!(s.weight(0, 1), 3.0);
    }

    #[test]
    fn self_loop_listed_once() {
        let s = GraphSnapshot::from_stream_prefix(&stream(), 4);
        assert_eq!(s.neighbors(3), &[(3, 1.0)]);
        assert_eq!(s.static_degree(3), 1);
    }

    #[test]
    fn active_nodes_excludes_isolated() {
        let s = GraphSnapshot::from_stream_prefix(&stream(), 3);
        assert_eq!(s.active_nodes(), vec![0, 1, 2]);
    }
}
