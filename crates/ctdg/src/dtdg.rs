//! Discrete-time dynamic graph (DTDG) view of an edge stream.
//!
//! The paper's robustness experiment (§V-B, Fig. 12) compares SPLASH against
//! DTDG-based methods for handling distribution shifts — DIDA (Zhang et al.,
//! NeurIPS 2022) and SLID/SILD (Zhang et al., NeurIPS 2024). Those methods
//! are not defined on a CTDG: they consume a *sequence of graph snapshots*,
//! one per discrete time window. This module is the conversion substrate: it
//! partitions the stream's time range into `W` equal windows and materializes
//! a per-window (non-cumulative) [`GraphSnapshot`] for each, exactly the
//! input representation DTDG models assume.
//!
//! The same bucketing is reused at per-query granularity by the DIDA/SLID
//! baselines in the `baselines` crate: a node's `k` most recent events are
//! grouped into micro-snapshots with [`bucket_by_window`], giving each query
//! a local DTDG view of its own history.

use crate::edge::{EdgeStream, Time};
use crate::snapshot::GraphSnapshot;

/// A stream partitioned into `W` half-open windows `[start_w, end_w)` of
/// equal duration, each materialized as a static weighted snapshot of only
/// the edges that arrived inside that window.
#[derive(Debug, Clone)]
pub struct DtdgView {
    windows: Vec<GraphSnapshot>,
    /// `bounds[w] = (start, end)`; the final window is closed on the right so
    /// the stream's last edge is never dropped.
    bounds: Vec<(Time, Time)>,
    start: Time,
    width: f64,
}

impl DtdgView {
    /// Partitions `stream` into `num_windows` equal-duration windows.
    ///
    /// With an empty stream or a single distinct timestamp every edge lands
    /// in the first window and the remaining windows are empty snapshots.
    ///
    /// ```
    /// use ctdg::{DtdgView, EdgeStream, TemporalEdge};
    ///
    /// let stream = EdgeStream::new(vec![
    ///     TemporalEdge::plain(0, 1, 0.0),
    ///     TemporalEdge::plain(1, 2, 10.0),
    /// ]).unwrap();
    /// let view = DtdgView::new(&stream, 2);
    /// assert_eq!(view.window(0).num_temporal_edges(), 1);
    /// assert_eq!(view.window_of(9.9), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `num_windows == 0`.
    pub fn new(stream: &EdgeStream, num_windows: usize) -> Self {
        assert!(num_windows > 0, "a DTDG view needs at least one window");
        let start = stream.start_time().unwrap_or(0.0);
        let end = stream.end_time().unwrap_or(start);
        let span = (end - start).max(0.0);
        let width = if span > 0.0 { span / num_windows as f64 } else { 1.0 };

        let n = stream.num_nodes();
        let mut per_window: Vec<Vec<crate::edge::TemporalEdge>> =
            (0..num_windows).map(|_| Vec::new()).collect();
        for edge in stream.edges() {
            let w = window_index(edge.time, start, width, num_windows);
            per_window[w].push(edge.clone());
        }
        let windows = per_window
            .iter()
            .map(|edges| GraphSnapshot::from_edges(n, edges))
            .collect();
        let bounds = (0..num_windows)
            .map(|w| (start + w as f64 * width, start + (w + 1) as f64 * width))
            .collect();
        Self { windows, bounds, start, width }
    }

    /// Number of windows `W`.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// The per-window snapshot of window `w`.
    pub fn window(&self, w: usize) -> &GraphSnapshot {
        &self.windows[w]
    }

    /// All window snapshots in chronological order.
    pub fn windows(&self) -> &[GraphSnapshot] {
        &self.windows
    }

    /// The half-open `[start, end)` bounds of window `w` (the final window
    /// additionally includes its right endpoint).
    pub fn bounds(&self, w: usize) -> (Time, Time) {
        self.bounds[w]
    }

    /// The window containing time `t`, clamped into `0..W` for out-of-range
    /// times (DTDG models route unseen-future queries to the last window).
    pub fn window_of(&self, t: Time) -> usize {
        window_index(t, self.start, self.width, self.windows.len())
    }

    /// Total temporal edges across all windows (equals the stream length).
    pub fn total_temporal_edges(&self) -> usize {
        self.windows.iter().map(GraphSnapshot::num_temporal_edges).sum()
    }
}

/// Clamped equal-width bucketing shared by [`DtdgView`] and
/// [`bucket_by_window`].
fn window_index(t: Time, start: Time, width: f64, num_windows: usize) -> usize {
    if num_windows == 0 {
        return 0;
    }
    let raw = ((t - start) / width).floor();
    if raw.is_nan() || raw < 0.0 {
        0
    } else {
        (raw as usize).min(num_windows - 1)
    }
}

/// Buckets chronologically ordered event times in `[t_min, t_max]` into
/// `num_windows` equal windows, returning the window index of each event.
/// This is the per-query micro-snapshot grouping used by the DTDG baselines:
/// a node's recent events become a short snapshot sequence.
///
/// Degenerate spans (all events simultaneous, or no events) map everything
/// to window 0.
pub fn bucket_by_window(times: &[Time], num_windows: usize) -> Vec<usize> {
    assert!(num_windows > 0, "bucketing needs at least one window");
    let (Some(&first), Some(&last)) = (times.first(), times.last()) else {
        return Vec::new();
    };
    let span = (last - first).max(0.0);
    let width = if span > 0.0 { span / num_windows as f64 } else { 1.0 };
    times
        .iter()
        .map(|&t| window_index(t, first, width, num_windows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::TemporalEdge;

    fn stream() -> EdgeStream {
        EdgeStream::new(vec![
            TemporalEdge::plain(0, 1, 0.0),
            TemporalEdge::plain(1, 2, 2.5),
            TemporalEdge::plain(2, 3, 5.0),
            TemporalEdge::plain(0, 3, 7.5),
            TemporalEdge::plain(1, 3, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn edges_are_partitioned_not_accumulated() {
        let view = DtdgView::new(&stream(), 4);
        assert_eq!(view.num_windows(), 4);
        assert_eq!(view.total_temporal_edges(), 5);
        // Window 0 covers [0, 2.5): only the t=0 edge.
        assert_eq!(view.window(0).num_temporal_edges(), 1);
        assert_eq!(view.window(0).weight(0, 1), 1.0);
        assert_eq!(view.window(0).weight(1, 2), 0.0);
        // The final (closed) window keeps the t=10 edge.
        assert!(view.window(3).num_temporal_edges() >= 1);
        assert_eq!(view.window(3).weight(1, 3), 1.0);
    }

    #[test]
    fn window_of_is_monotone_and_clamped() {
        let view = DtdgView::new(&stream(), 4);
        let mut prev = 0;
        for t in [-5.0, 0.0, 2.4, 2.5, 9.9, 10.0, 99.0] {
            let w = view.window_of(t);
            assert!(w >= prev, "window_of must be monotone in t");
            assert!(w < 4);
            prev = w;
        }
        assert_eq!(view.window_of(-5.0), 0);
        assert_eq!(view.window_of(99.0), 3);
    }

    #[test]
    fn bounds_tile_the_span() {
        let view = DtdgView::new(&stream(), 5);
        assert_eq!(view.bounds(0).0, 0.0);
        assert!((view.bounds(4).1 - 10.0).abs() < 1e-9);
        for w in 1..5 {
            assert!((view.bounds(w).0 - view.bounds(w - 1).1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_window_matches_full_snapshot() {
        let s = stream();
        let view = DtdgView::new(&s, 1);
        let full = GraphSnapshot::from_stream_prefix(&s, s.len());
        assert_eq!(view.window(0).num_edges(), full.num_edges());
        assert_eq!(view.window(0).num_temporal_edges(), full.num_temporal_edges());
    }

    #[test]
    fn degenerate_spans_go_to_window_zero() {
        let s = EdgeStream::new(vec![
            TemporalEdge::plain(0, 1, 3.0),
            TemporalEdge::plain(1, 2, 3.0),
        ])
        .unwrap();
        let view = DtdgView::new(&s, 3);
        assert_eq!(view.window(0).num_temporal_edges(), 2);
        assert_eq!(view.window(1).num_temporal_edges(), 0);

        let empty = EdgeStream::new(vec![]).unwrap();
        let view = DtdgView::new(&empty, 2);
        assert_eq!(view.total_temporal_edges(), 0);
    }

    #[test]
    fn bucket_by_window_groups_chronological_events() {
        let buckets = bucket_by_window(&[0.0, 1.0, 2.0, 3.0], 2);
        assert_eq!(buckets, vec![0, 0, 1, 1]);
        assert_eq!(bucket_by_window(&[], 3), Vec::<usize>::new());
        // All-simultaneous events collapse into window 0.
        assert_eq!(bucket_by_window(&[5.0, 5.0, 5.0], 4), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        DtdgView::new(&stream(), 0);
    }
}
