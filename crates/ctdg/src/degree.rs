//! Incremental node degrees (paper Eq. 2).
//!
//! The degree of node `v_i` at time `t` is the number of temporal edges
//! incident to it that arrived up to `t`. Degrees drive the structural
//! feature augmentation (sinusoidal degree encoding, Eq. 3) and the
//! propagation weights for random/positional features of unseen nodes
//! (Eqs. 4–5), so they must be maintainable in `O(1)` per edge.

use crate::edge::{NodeId, TemporalEdge};

/// Incremental degree counts for every node.
#[derive(Debug, Clone, Default)]
pub struct DegreeTracker {
    degrees: Vec<u64>,
    total: u64,
}

impl DegreeTracker {
    /// Creates a tracker pre-sized for `num_nodes_hint` nodes.
    pub fn new(num_nodes_hint: usize) -> Self {
        Self { degrees: vec![0; num_nodes_hint], total: 0 }
    }

    fn ensure(&mut self, node: NodeId) {
        let need = node as usize + 1;
        if self.degrees.len() < need {
            self.degrees.resize(need, 0);
        }
    }

    /// Ingests one temporal edge, incrementing both endpoint degrees
    /// (a self-loop contributes 2 to its node, matching Eq. 2's count of
    /// incident temporal edges per endpoint slot).
    pub fn update(&mut self, edge: &TemporalEdge) {
        self.ensure(edge.src);
        self.ensure(edge.dst);
        self.degrees[edge.src as usize] += 1;
        self.degrees[edge.dst as usize] += 1;
        self.total += 2;
    }

    /// The degree of `node` (0 for unseen nodes).
    pub fn degree(&self, node: NodeId) -> u64 {
        self.degrees.get(node as usize).copied().unwrap_or(0)
    }

    /// Sum of all node degrees (= 2 × number of ingested edges).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean degree over nodes with at least one incident edge; 0 when empty.
    pub fn mean_active_degree(&self) -> f64 {
        let active: Vec<u64> = self.degrees.iter().copied().filter(|&d| d > 0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<u64>() as f64 / active.len() as f64
        }
    }

    /// The raw per-node degree counts (index = node id; trailing nodes with
    /// no incident edges may be absent). Pairs with [`DegreeTracker::from_raw`]
    /// so a checkpoint can persist the tracker verbatim.
    pub fn degrees_raw(&self) -> &[u64] {
        &self.degrees
    }

    /// Rebuilds a tracker from counts captured via
    /// [`DegreeTracker::degrees_raw`] and [`DegreeTracker::total`].
    pub fn from_raw(degrees: Vec<u64>, total: u64) -> Self {
        Self { degrees, total }
    }

    /// Builds a tracker from a stream prefix of `prefix_len` edges.
    pub fn from_stream_prefix(stream: &crate::EdgeStream, prefix_len: usize) -> Self {
        let mut t = Self::new(stream.num_nodes());
        for edge in &stream.edges()[..prefix_len.min(stream.len())] {
            t.update(edge);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{EdgeStream, TemporalEdge};

    fn e(src: u32, dst: u32, t: f64) -> TemporalEdge {
        TemporalEdge::plain(src, dst, t)
    }

    #[test]
    fn counts_both_endpoints() {
        let mut d = DegreeTracker::new(3);
        d.update(&e(0, 1, 1.0));
        d.update(&e(0, 2, 2.0));
        assert_eq!(d.degree(0), 2);
        assert_eq!(d.degree(1), 1);
        assert_eq!(d.degree(2), 1);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn unseen_nodes_have_zero_degree() {
        let d = DegreeTracker::new(0);
        assert_eq!(d.degree(42), 0);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut d = DegreeTracker::new(1);
        d.update(&e(0, 0, 1.0));
        assert_eq!(d.degree(0), 2);
    }

    #[test]
    fn mean_active_degree_ignores_isolated() {
        let mut d = DegreeTracker::new(10);
        d.update(&e(0, 1, 1.0));
        d.update(&e(0, 2, 2.0));
        // active degrees: 2, 1, 1 -> mean 4/3
        assert!((d.mean_active_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_prefix_matches_incremental() {
        let stream =
            EdgeStream::new(vec![e(0, 1, 1.0), e(1, 2, 2.0), e(0, 2, 3.0)]).unwrap();
        let d = DegreeTracker::from_stream_prefix(&stream, 2);
        assert_eq!(d.degree(0), 1);
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.degree(2), 1);
    }
}
