//! Chronological replay of an edge stream merged with label queries
//! (paper Fig. 4).
//!
//! Node property prediction on a CTDG interleaves two event kinds: arriving
//! temporal edges (which update the memory) and label queries (which trigger
//! a prediction from the memory as updated so far). [`replay`] merges the
//! two ordered sequences into a single chronological event sequence; ties
//! are resolved edge-first so a query at time `t` observes all edges with
//! `time <= t`, matching the problem definition in §III.

use crate::edge::{EdgeStream, PropertyQuery, TemporalEdge};

/// One event in a merged replay.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A temporal edge arrived; holds its stream index and the edge.
    Edge(usize, &'a TemporalEdge),
    /// A label query fired; holds its index in the query slice and the query.
    Query(usize, &'a PropertyQuery),
}

impl Event<'_> {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match self {
            Event::Edge(_, e) => e.time,
            Event::Query(_, q) => q.time,
        }
    }
}

/// Merges `stream` and `queries` into one chronological event sequence.
///
/// Both inputs must already be chronologically ordered. At equal timestamps
/// edges precede queries, so a prediction at time `t` may use every edge
/// with `t(l) <= t` and nothing later.
pub fn replay<'a>(stream: &'a EdgeStream, queries: &'a [PropertyQuery]) -> Vec<Event<'a>> {
    debug_assert!(queries.windows(2).all(|w| w[0].time <= w[1].time));
    let mut events = Vec::with_capacity(stream.len() + queries.len());
    let mut qi = 0usize;
    for (ei, edge) in stream.edges().iter().enumerate() {
        while qi < queries.len() && queries[qi].time < edge.time {
            events.push(Event::Query(qi, &queries[qi]));
            qi += 1;
        }
        events.push(Event::Edge(ei, edge));
    }
    for (rest, q) in queries[qi..].iter().enumerate() {
        events.push(Event::Query(qi + rest, q));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{Label, TemporalEdge};

    fn q(t: f64) -> PropertyQuery {
        PropertyQuery { node: 0, time: t, label: Label::Class(0) }
    }

    #[test]
    fn merged_order_is_chronological_edge_first() {
        let stream = EdgeStream::new(vec![
            TemporalEdge::plain(0, 1, 1.0),
            TemporalEdge::plain(1, 2, 3.0),
        ])
        .unwrap();
        let queries = vec![q(0.5), q(1.0), q(3.0), q(4.0)];
        let events = replay(&stream, &queries);
        let times: Vec<f64> = events.iter().map(Event::time).collect();
        assert_eq!(times, vec![0.5, 1.0, 1.0, 3.0, 3.0, 4.0]);
        // At the t=1.0 tie the edge comes first.
        assert!(matches!(events[1], Event::Edge(0, _)));
        assert!(matches!(events[2], Event::Query(1, _)));
        // At the t=3.0 tie the edge comes first as well.
        assert!(matches!(events[3], Event::Edge(1, _)));
        assert!(matches!(events[4], Event::Query(2, _)));
    }

    #[test]
    fn all_events_present() {
        let stream = EdgeStream::new(vec![TemporalEdge::plain(0, 1, 2.0)]).unwrap();
        let queries = vec![q(1.0), q(5.0)];
        let events = replay(&stream, &queries);
        assert_eq!(events.len(), 3);
        let n_edges = events.iter().filter(|e| matches!(e, Event::Edge(..))).count();
        assert_eq!(n_edges, 1);
    }

    #[test]
    fn empty_inputs() {
        let stream = EdgeStream::new(vec![]).unwrap();
        assert!(replay(&stream, &[]).is_empty());
        let queries = vec![q(1.0)];
        assert_eq!(replay(&stream, &queries).len(), 1);
    }
}
