//! Chronological splitting of property-query sets (paper Eq. 9, §V-A).
//!
//! All experiments in the paper split label queries chronologically: the
//! standard evaluation protocol is a 10/10/80 train/validation/test split,
//! and the feature-selection step (§IV-B) re-splits the available queries at
//! five different split times (10/90 … 90/10) to simulate varying degrees of
//! distribution shift.

use crate::edge::{PropertyQuery, Time};

/// Splits queries into `(before, after)` at `t_split`: `before` holds all
/// queries with `time <= t_split` (the training property set `Y_T`), `after`
/// the rest (`Y_V`). Queries must be chronologically ordered.
pub fn split_at_time(queries: &[PropertyQuery], t_split: Time) -> (&[PropertyQuery], &[PropertyQuery]) {
    debug_assert!(queries.windows(2).all(|w| w[0].time <= w[1].time));
    let idx = queries.partition_point(|q| q.time <= t_split);
    queries.split_at(idx)
}

/// Splits queries into `(head, tail)` where `head` contains the first
/// `frac` fraction of queries by position.
pub fn split_at_fraction(queries: &[PropertyQuery], frac: f64) -> (&[PropertyQuery], &[PropertyQuery]) {
    assert!((0.0..=1.0).contains(&frac), "fraction must be within [0, 1]");
    let idx = ((queries.len() as f64) * frac).round() as usize;
    queries.split_at(idx.min(queries.len()))
}

/// Chronological multi-way split by cumulative fractions.
///
/// `fractions` must sum to (approximately) 1; returns one slice per
/// fraction, in order. Used for the 10/10/80 protocol via
/// `chronological_split(qs, &[0.1, 0.1, 0.8])`.
pub fn chronological_split<'a>(
    queries: &'a [PropertyQuery],
    fractions: &[f64],
) -> Vec<&'a [PropertyQuery]> {
    let total: f64 = fractions.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "split fractions must sum to 1, got {total}"
    );
    let n = queries.len();
    let mut out = Vec::with_capacity(fractions.len());
    let mut start = 0usize;
    let mut cum = 0.0;
    for (i, f) in fractions.iter().enumerate() {
        cum += f;
        let end = if i + 1 == fractions.len() {
            n
        } else {
            ((n as f64) * cum).round() as usize
        };
        let end = end.clamp(start, n);
        out.push(&queries[start..end]);
        start = end;
    }
    out
}

/// The paper's standard chronological 10/10/80 train/val/test split.
pub fn train_val_test(
    queries: &[PropertyQuery],
) -> (&[PropertyQuery], &[PropertyQuery], &[PropertyQuery]) {
    let parts = chronological_split(queries, &[0.1, 0.1, 0.8]);
    (parts[0], parts[1], parts[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Label;

    fn qs(n: usize) -> Vec<PropertyQuery> {
        (0..n)
            .map(|i| PropertyQuery { node: 0, time: i as f64, label: Label::Class(0) })
            .collect()
    }

    #[test]
    fn split_at_time_inclusive() {
        let q = qs(10);
        let (a, b) = split_at_time(&q, 4.0);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].time, 5.0);
    }

    #[test]
    fn split_at_fraction_rounds() {
        let q = qs(10);
        let (a, b) = split_at_fraction(&q, 0.25);
        assert_eq!(a.len(), 3); // 2.5 rounds to 3
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn chronological_partition_is_exhaustive() {
        let q = qs(100);
        let parts = chronological_split(&q, &[0.1, 0.1, 0.8]);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
        assert_eq!(parts[0].len(), 10);
        assert_eq!(parts[1].len(), 10);
        assert_eq!(parts[2].len(), 80);
    }

    #[test]
    fn train_val_test_covers_all() {
        let q = qs(37);
        let (tr, va, te) = train_val_test(&q);
        assert_eq!(tr.len() + va.len() + te.len(), 37);
        // Chronology: every train time <= every val time <= every test time.
        assert!(tr.last().is_none_or(|a| a.time <= va.first().map_or(f64::MAX, |b| b.time)));
        assert!(va.last().is_none_or(|a| a.time <= te.first().map_or(f64::MAX, |b| b.time)));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn fractions_must_sum_to_one() {
        chronological_split(&qs(5), &[0.5, 0.4]);
    }

    #[test]
    fn empty_queries_ok() {
        let q = qs(0);
        let (a, b) = split_at_fraction(&q, 0.5);
        assert!(a.is_empty() && b.is_empty());
        let parts = chronological_split(&q, &[0.3, 0.7]);
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
