//! Integration tests for the paper's qualitative claims, at test-suite
//! scale: feature augmentation helps, the selector tracks the label-
//! generating mechanism, SLIM is the lightest model, and the selector is
//! cheaper than model-based selection.

use splash_repro::baselines::{build_baseline, BaselineKind};
use splash_repro::datasets::{synthetic_shift, Task};
use splash_repro::splash::{
    run_slim_with, select_features, truncate_to_available, FeatureProcess, InputFeatures,
    SplashConfig, SEEN_FRAC,
};

#[test]
fn augmented_features_beat_zero_features_under_shift() {
    // Paper Table IV / §II-F finding: featureless TGNNs collapse on
    // identity-driven labels; augmented features recover them.
    let dataset = truncate_to_available(&synthetic_shift(50, 9), 0.5);
    let cfg = SplashConfig { epochs: 6, ..SplashConfig::default() };
    let zf = run_slim_with(&dataset, &cfg, InputFeatures::Zero);
    let aug = run_slim_with(&dataset, &cfg, InputFeatures::Process(FeatureProcess::Positional));
    assert!(
        aug.metric > zf.metric,
        "positional ({:.3}) must beat zero ({:.3})",
        aug.metric,
        zf.metric
    );
}

#[test]
fn selector_rejects_structural_features_for_community_labels() {
    // Synthetic-shift labels are community ids: identity-positional, not
    // degree-structural. The selector must not pick S.
    let dataset = truncate_to_available(&synthetic_shift(50, 4), 0.5);
    let cfg = SplashConfig::tiny();
    let report = select_features(&dataset, &cfg, SEEN_FRAC);
    assert_ne!(report.selected, FeatureProcess::Structural, "risks {:?}", report.risks);
}

#[test]
fn slim_is_lighter_than_every_baseline() {
    // Paper Fig. 10: SPLASH has the fewest parameters among the strong
    // models. Compare at identical dims.
    let cfg = SplashConfig::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let slim = splash_repro::splash::SlimModel::new(&cfg, cfg.feat_dim, 8, 2, &mut rng);
    let slim_params = splash_repro::nn::Parameterized::num_params(&slim);
    for kind in [BaselineKind::Tgn, BaselineKind::DyGFormer, BaselineKind::DySat] {
        let model = build_baseline(kind, cfg.feat_dim, 8, 2, &cfg);
        assert!(
            model.num_params() > slim_params,
            "{} ({}) should outweigh SLIM ({slim_params})",
            model.name(),
            model.num_params()
        );
    }
}

#[test]
fn selection_is_robust_across_seeds() {
    // The selector should be stable on strongly structured data.
    let mut selected = Vec::new();
    for seed in [1u64, 2, 3] {
        let dataset = truncate_to_available(&synthetic_shift(50, seed), 0.5);
        let mut cfg = SplashConfig::tiny();
        cfg.seed = seed;
        selected.push(select_features(&dataset, &cfg, SEEN_FRAC).selected);
    }
    assert!(
        selected.iter().all(|&p| p != FeatureProcess::Structural),
        "selected {selected:?}"
    );
}

#[test]
fn grarep_positional_source_works_end_to_end() {
    // Eq. 1's Embedding function is pluggable; swapping node2vec for GraRep
    // must keep SLIM+P effective on community-labeled data (§II-D cites
    // GraRep as an equally valid positional embedding).
    let dataset = truncate_to_available(&synthetic_shift(50, 9), 0.4);
    let mut cfg = SplashConfig::default();
    cfg.epochs = 6;
    cfg.positional = splash_repro::splash::PositionalSource::GraRep(
        splash_repro::embed::GraRepConfig {
            dim: cfg.feat_dim,
            transition_steps: 2,
            svd_iters: 3,
        },
    );
    let zf = run_slim_with(&dataset, &cfg, InputFeatures::Zero);
    let gr = run_slim_with(&dataset, &cfg, InputFeatures::Process(FeatureProcess::Positional));
    assert!(
        gr.metric > zf.metric,
        "GraRep-positional ({:.3}) must beat zero features ({:.3})",
        gr.metric,
        zf.metric
    );
}

#[test]
fn tasks_use_their_paper_metrics() {
    use splash_repro::ctdg::Label;
    use splash_repro::nn::Matrix;
    // AUC is rank-based: doubling logit scale must not change it; F1 is not.
    let logits = Matrix::from_vec(4, 2, vec![1.0, -1.0, -1.0, 1.0, 0.5, -0.2, -0.3, 0.8]);
    let labels = [Label::Class(0), Label::Class(1), Label::Class(0), Label::Class(1)];
    let refs: Vec<&Label> = labels.iter().collect();
    let auc1 = splash_repro::splash::task::evaluate(Task::Anomaly, &logits, &refs);
    let auc2 = splash_repro::splash::task::evaluate(Task::Anomaly, &logits.scale(2.0), &refs);
    assert!((auc1 - auc2).abs() < 1e-12, "AUC must be scale-invariant");
}
