//! Cross-crate integration tests: the full pipeline on small datasets,
//! streaming causality, and determinism.

use splash_repro::baselines::{run as run_baseline_kind, BaselineKind};
use splash_repro::ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};
use splash_repro::datasets::{synthetic_shift, Dataset, Task};
use splash_repro::splash::{
    capture, run_slim_with, run_splash, truncate_to_available, FeatureProcess, InputFeatures,
    SplashConfig, SEEN_FRAC,
};

fn small_dataset() -> Dataset {
    truncate_to_available(&synthetic_shift(50, 3), 0.35)
}

fn tiny_cfg() -> SplashConfig {
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 3;
    cfg.selector_epochs = 2;
    cfg
}

#[test]
fn full_pipeline_produces_valid_output() {
    let dataset = small_dataset();
    let out = run_splash(&dataset, &tiny_cfg());
    assert!(out.selected.is_some());
    assert!(out.metric >= 0.0 && out.metric <= 1.0);
    assert!(out.num_params > 0);
    let (s, e) = out.test_range;
    assert!(e > s);
    assert_eq!(out.test_logits.rows(), e - s);
    assert!(out.test_logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn pipeline_is_deterministic() {
    let dataset = small_dataset();
    let cfg = tiny_cfg();
    let a = run_splash(&dataset, &cfg);
    let b = run_splash(&dataset, &cfg);
    assert_eq!(a.metric, b.metric);
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.test_logits, b.test_logits);
}

/// Streaming causality: a prediction at time `t` must not change when
/// *future* edges change. We capture the same dataset twice, the second time
/// with the post-test-period suffix of the stream rewired, and compare the
/// captured inputs of early queries.
#[test]
fn captures_are_causal() {
    let dataset = small_dataset();
    let cfg = tiny_cfg();
    let cap_a = capture(&dataset, InputFeatures::Process(FeatureProcess::Random), &cfg, SEEN_FRAC);

    // Rewire every edge after the median query time.
    let cut_time = dataset.queries[dataset.queries.len() / 2].time;
    let mut edges: Vec<TemporalEdge> = dataset.stream.edges().to_vec();
    for e in edges.iter_mut().filter(|e| e.time > cut_time) {
        std::mem::swap(&mut e.src, &mut e.dst);
        e.weight += 1.0;
    }
    let mutated = Dataset {
        name: dataset.name.clone(),
        task: dataset.task,
        stream: EdgeStream::new_unchecked(edges),
        queries: dataset.queries.clone(),
        num_classes: dataset.num_classes,
        node_feats: None,
    };
    let cap_b = capture(&mutated, InputFeatures::Process(FeatureProcess::Random), &cfg, SEEN_FRAC);

    for (qa, qb) in cap_a.queries.iter().zip(&cap_b.queries) {
        if qa.time >= cut_time {
            continue;
        }
        assert_eq!(qa.target_feat, qb.target_feat, "feature at t={} leaked", qa.time);
        assert_eq!(qa.neighbors.len(), qb.neighbors.len());
        for (na, nb) in qa.neighbors.iter().zip(&qb.neighbors) {
            assert_eq!(na.feat, nb.feat);
            assert_eq!(na.time, nb.time);
        }
    }
}

#[test]
fn every_baseline_runs_on_every_task() {
    let mut cfg = tiny_cfg();
    cfg.epochs = 1;
    let class_data = small_dataset();
    let anomaly_data = truncate_to_available(&splash_repro::datasets::mooc(), 0.2);
    let affinity_data = splash_repro::datasets::tgbn_trade();
    for kind in BaselineKind::ALL {
        for dataset in [&class_data, &anomaly_data, &affinity_data] {
            if !kind.supports(dataset.task) {
                continue;
            }
            let out = run_baseline_kind(kind, dataset, InputFeatures::RawRandom, &cfg);
            assert!(
                out.metric >= 0.0 && out.metric <= 1.0,
                "{} on {:?}: metric {}",
                out.name,
                dataset.task,
                out.metric
            );
            assert!(out.test_logits.data().iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn dtdg_baselines_run_on_every_task() {
    use splash_repro::baselines::{run_dtdg, DtdgKind};
    let mut cfg = tiny_cfg();
    cfg.epochs = 1;
    let class_data = small_dataset();
    let anomaly_data = truncate_to_available(&splash_repro::datasets::mooc(), 0.2);
    let affinity_data = splash_repro::datasets::tgbn_trade();
    for kind in DtdgKind::ALL {
        for dataset in [&class_data, &anomaly_data, &affinity_data] {
            let out = run_dtdg(kind, dataset, InputFeatures::RawRandom, &cfg);
            assert!(
                out.metric >= 0.0 && out.metric <= 1.0,
                "{} on {:?}: metric {}",
                out.name,
                dataset.task,
                out.metric
            );
            assert!(out.test_logits.data().iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn dtdg_view_agrees_with_capture_chronology() {
    // The DTDG snapshot-sequence view and the streaming capture describe
    // the same data: every captured neighbor's window index must be
    // consistent with the view's bucketing of its edge time.
    let dataset = small_dataset();
    let view = splash_repro::ctdg::DtdgView::new(&dataset.stream, 6);
    let cfg = tiny_cfg();
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    for q in &cap.queries {
        for nb in &q.neighbors {
            let w = view.window_of(nb.time);
            let (lo, hi) = view.bounds(w);
            assert!(
                nb.time >= lo - 1e-9 && (nb.time < hi + 1e-9 || w == view.num_windows() - 1),
                "neighbor at t={} bucketed into [{lo}, {hi})",
                nb.time
            );
        }
    }
}

#[test]
fn slim_handles_queries_with_no_history() {
    // A dataset whose very first query precedes every edge.
    let edges = vec![TemporalEdge::plain(0, 1, 10.0), TemporalEdge::plain(1, 2, 20.0)];
    let queries: Vec<PropertyQuery> = (0..20)
        .map(|i| PropertyQuery {
            node: (i % 3) as u32,
            time: i as f64 * 2.0,
            label: Label::Class((i % 2) as usize),
        })
        .collect();
    let dataset = Dataset {
        name: "cold".into(),
        task: Task::Classification,
        stream: EdgeStream::new(edges).unwrap(),
        queries,
        num_classes: 2,
        node_feats: None,
    };
    let out = run_slim_with(&dataset, &tiny_cfg(), InputFeatures::RawRandom);
    assert!(out.test_logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn affinity_pipeline_end_to_end() {
    let dataset = splash_repro::datasets::tgbn_trade();
    let mut cfg = tiny_cfg();
    cfg.epochs = 2;
    let out = run_slim_with(&dataset, &cfg, InputFeatures::Process(FeatureProcess::Random));
    assert!(out.metric > 0.0 && out.metric <= 1.0, "NDCG out of range: {}", out.metric);
}
