//! Socket-level contract of the `splash::server` wire front end.
//!
//! Three pins, all against a **real** server on an ephemeral port driven
//! by raw `TcpStream` clients:
//!
//! 1. **Wire ≡ in-process, bit for bit** — a stream replayed over HTTP
//!    yields byte-identical predictions and the identical streamed metric
//!    as the same stream driven through `SplashService` directly, at shard
//!    counts 1 and 3.
//! 2. **Malformed requests never kill the server** — a proptest-driven
//!    grammar of truncated, lying, oversized, and garbage requests each
//!    gets a typed 4xx (or a clean disconnect) and the server keeps
//!    serving.
//! 3. **Backpressure is typed and accounted** — a saturated queue sheds
//!    with `429` while accepted requests all complete; an expired deadline
//!    is `504` and counted; latency percentiles are deterministic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use ctdg::{replay, Event, Label, TemporalEdge};
use datasets::Dataset;
use proptest::prelude::*;
use splash::{
    seen_end_time, truncate_to_available, FeatureProcess, IngestRequest, LatencyHistogram,
    PredictRequest, PredictResponse, ServerConfig, ServerHandle, SplashConfig, SplashServer,
    SplashService, SEEN_FRAC,
};

// ---------------------------------------------------------------------------
// A minimal raw-socket HTTP/1.1 client (keep-alive, length-delimited).

struct Client {
    stream: TcpStream,
}

struct Reply {
    status: u16,
    kind: Option<String>,
    ctype: Option<String>,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Self { stream }
    }

    fn request(&mut self, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Reply {
        let mut req = format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);
        self.stream.write_all(req.as_bytes()).expect("write request");
        read_reply(&mut self.stream)
    }
}

fn read_reply(stream: &mut TcpStream) -> Reply {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line {line:?}"));
    let mut content_length = 0usize;
    let mut kind = None;
    let mut ctype = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().expect("length"),
                "x-splash-error" => kind = Some(value.trim().to_string()),
                "content-type" => ctype = Some(value.trim().to_string()),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    // Hand any buffered spillover back? BufReader dies here, but replies
    // are read whole per request and the next request starts fresh on the
    // raw stream, so nothing is ever left buffered.
    assert!(reader.buffer().is_empty(), "reply left unread bytes in the buffer");
    Reply { status, kind, ctype, body: String::from_utf8(body).expect("utf-8 body") }
}

// ---------------------------------------------------------------------------
// Fixture: the deterministic service pair (training is seeded, so two
// builds are bit-identical twins).

fn fixture() -> (Dataset, SplashConfig) {
    let dataset = truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    (dataset, cfg)
}

fn trained_service(dataset: &Dataset, cfg: &SplashConfig, shards: usize) -> SplashService {
    let mut service = SplashService::builder(*cfg).shards(shards).build().unwrap();
    service
        .train_model_with_process("live", dataset, FeatureProcess::Random)
        .unwrap();
    service
}

fn edges_csv(edges: &[TemporalEdge]) -> String {
    let mut csv = String::from("src,dst,time,weight\n");
    for e in edges {
        csv.push_str(&format!("{},{},{},{}", e.src, e.dst, e.time, e.weight));
        for f in e.feat.iter() {
            csv.push_str(&format!(",{f}"));
        }
        csv.push('\n');
    }
    csv
}

/// Replays the post-training tail through the in-process service:
/// micro-batched ingests between queries, logits collected bitwise.
fn replay_in_process(service: &mut SplashService, dataset: &Dataset) -> (Vec<u32>, f64) {
    let t_live = seen_end_time(dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_live);
    let mut pending: Vec<TemporalEdge> = Vec::new();
    let mut resp = PredictResponse::default();
    let mut bits = Vec::new();
    let mut flat: Vec<f32> = Vec::new();
    let mut labels: Vec<&Label> = Vec::new();
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    pending.push(edge.clone());
                }
            }
            Event::Query(_, q) => {
                if q.time < t_live {
                    continue;
                }
                if !pending.is_empty() {
                    service.ingest("live", IngestRequest::new(&pending)).unwrap();
                    pending.clear();
                }
                service
                    .predict_into("live", PredictRequest::new(q.node, q.time), &mut resp)
                    .unwrap();
                bits.extend(resp.logits.iter().map(|v| v.to_bits()));
                flat.extend_from_slice(&resp.logits);
                labels.push(&q.label);
            }
        }
    }
    let out_dim = flat.len() / labels.len();
    let metric = splash::task::evaluate(
        dataset.task,
        &nn::Matrix::from_vec(labels.len(), out_dim, flat),
        &labels,
    );
    (bits, metric)
}

fn flush_edges_wire(client: &mut Client, pending: &mut Vec<TemporalEdge>) {
    if pending.is_empty() {
        return;
    }
    let reply = client.request("POST", "/models/live/ingest", &[], &edges_csv(pending));
    assert_eq!(reply.status, 200, "{}", reply.body);
    pending.clear();
}

fn flush_queries_wire<'a>(
    client: &mut Client,
    pending: &mut Vec<(u32, f64, &'a Label)>,
    bits: &mut Vec<u32>,
    flat: &mut Vec<f32>,
    labels: &mut Vec<&'a Label>,
) {
    if pending.is_empty() {
        return;
    }
    let mut body = String::new();
    for (node, time, _) in pending.iter() {
        body.push_str(&format!("{node},{time}\n"));
    }
    let reply = client.request("POST", "/models/live/predict", &[], &body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let rows: Vec<&str> = reply.body.lines().collect();
    assert_eq!(rows.len(), pending.len());
    for row in rows {
        for cell in row.split(',') {
            let v: f32 = cell.parse().expect("logit cell");
            bits.push(v.to_bits());
            flat.push(v);
        }
    }
    for (_, _, label) in pending.iter() {
        labels.push(label);
    }
    pending.clear();
}

/// The same replay, but spoken over the socket: edge batches as ingest
/// CSVs, query batches as predict bodies, logits parsed back from text.
/// Rust's `{}` float formatting prints the shortest exactly-roundtripping
/// decimal, so the wire preserves every bit.
fn replay_over_wire(client: &mut Client, dataset: &Dataset) -> (Vec<u32>, f64) {
    let t_live = seen_end_time(dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_live);
    let mut pending_edges: Vec<TemporalEdge> = Vec::new();
    let mut pending_queries: Vec<(u32, f64, &Label)> = Vec::new();
    let mut bits = Vec::new();
    let mut flat: Vec<f32> = Vec::new();
    let mut labels: Vec<&Label> = Vec::new();

    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    flush_queries_wire(
                        client,
                        &mut pending_queries,
                        &mut bits,
                        &mut flat,
                        &mut labels,
                    );
                    pending_edges.push(edge.clone());
                }
            }
            Event::Query(_, q) => {
                if q.time < t_live {
                    continue;
                }
                flush_edges_wire(client, &mut pending_edges);
                pending_queries.push((q.node, q.time, &q.label));
            }
        }
    }
    flush_edges_wire(client, &mut pending_edges);
    flush_queries_wire(client, &mut pending_queries, &mut bits, &mut flat, &mut labels);

    let out_dim = flat.len() / labels.len();
    let metric = splash::task::evaluate(
        dataset.task,
        &nn::Matrix::from_vec(labels.len(), out_dim, flat),
        &labels,
    );
    (bits, metric)
}

fn assert_wire_matches_in_process(shards: usize) {
    let (dataset, cfg) = fixture();
    let mut in_proc = trained_service(&dataset, &cfg, shards);
    let served = trained_service(&dataset, &cfg, shards);

    let handle = SplashServer::bind(served, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    let (wire_bits, wire_metric) = replay_over_wire(&mut client, &dataset);
    let (local_bits, local_metric) = replay_in_process(&mut in_proc, &dataset);

    assert!(!local_bits.is_empty(), "fixture produced no live queries");
    assert_eq!(
        wire_bits, local_bits,
        "wire-replayed predictions diverged bitwise from in-process (shards={shards})"
    );
    assert_eq!(
        wire_metric.to_bits(),
        local_metric.to_bits(),
        "streamed metric diverged: wire {wire_metric} vs in-process {local_metric}"
    );

    // The served engine saw exactly the same traffic as the in-process one.
    let served = handle.shutdown();
    let (wire_stats, local_stats) = (served.stats(), in_proc.stats());
    assert_eq!(wire_stats.edges_ingested, local_stats.edges_ingested);
    assert_eq!(wire_stats.queries_served, local_stats.queries_served);
    assert_eq!(wire_stats.deadlines_expired, 0);
    assert!(wire_stats.latency.count() > 0, "wire requests must be timed");
}

#[test]
fn wire_replay_is_bit_identical_single_engine() {
    assert_wire_matches_in_process(1);
}

#[test]
fn wire_replay_is_bit_identical_three_shards() {
    assert_wire_matches_in_process(3);
}

/// The typed error taxonomy crosses the wire: status codes from
/// `SplashError::http_status`, machine-readable kinds in `x-splash-error`.
#[test]
fn error_taxonomy_maps_to_statuses_over_the_wire() {
    let (dataset, cfg) = fixture();
    let mut service = trained_service(&dataset, &cfg, 1);
    let tail: Vec<TemporalEdge> = {
        let t_seen = seen_end_time(&dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        dataset.stream.edges()[prefix..prefix + 8].to_vec()
    };
    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t0 = tail.last().unwrap().time;

    let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    // Unknown model → 404 UnknownModel.
    let reply = client.request("POST", "/models/nope/predict", &[], "0,1e12\n");
    assert_eq!((reply.status, reply.kind.as_deref()), (404, Some("UnknownModel")));

    // An edge behind the stream clock → 409 OutOfOrderEdge, and the
    // rejected batch leaves the model serving.
    let stale = [TemporalEdge::plain(0, 1, t0 - 1e6)];
    let reply = client.request("POST", "/models/live/ingest", &[], &edges_csv(&stale));
    assert_eq!((reply.status, reply.kind.as_deref()), (409, Some("OutOfOrderEdge")));

    // A query in the past → 409 PastQuery.
    let reply = client.request("POST", "/models/live/predict", &[], &format!("0,{}\n", t0 - 1e6));
    assert_eq!((reply.status, reply.kind.as_deref()), (409, Some("PastQuery")));

    // Labels without an online trainer → 409 OnlineDisabled.
    let reply = client.request(
        "POST",
        "/models/live/labels",
        &[],
        &format!("node,time,label\n0,{},1\n", t0 + 1.0),
    );
    assert_eq!((reply.status, reply.kind.as_deref()), (409, Some("OnlineDisabled")));
    let reply = client.request("POST", "/models/live/fine-tune", &[], "");
    assert_eq!((reply.status, reply.kind.as_deref()), (409, Some("OnlineDisabled")));

    // The model list (with per-slot engine kind) and a live prediction
    // still answer after the errors.
    let reply = client.request("GET", "/models", &[], "");
    assert_eq!(
        (reply.status, reply.body.as_str()),
        (200, "live engine=splash shards=1 online=off durable=off\n")
    );
    let reply = client.request("POST", "/models/live/predict", &[], &format!("3,{t0}\n"));
    assert_eq!(reply.status, 200, "{}", reply.body);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Malformed-request fuzz-lite: the server outlives every request the
// grammar below can produce. One shared server across all cases — a leak
// or a dead worker in any case fails every later liveness probe.

fn fuzz_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        let cfg = ServerConfig {
            workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        SplashServer::bind(service, "127.0.0.1:0", cfg).unwrap()
    })
}

/// One malformed exchange: bytes to send, and the status the server must
/// answer (`None`: the server may only disconnect — truncation cases).
#[derive(Debug, Clone)]
struct MalformedCase {
    payload: Vec<u8>,
    expect: Option<u16>,
}

fn malformed_cases(filler: u8) -> Vec<MalformedCase> {
    let junk = (b'a' + filler % 26) as char;
    vec![
        MalformedCase { payload: b"GARBAGE\r\n\r\n".to_vec(), expect: Some(400) },
        MalformedCase { payload: b"GET /stats\r\n\r\n".to_vec(), expect: Some(400) },
        MalformedCase { payload: b"GET /stats HTTP/2.0\r\n\r\n".to_vec(), expect: Some(400) },
        MalformedCase {
            payload: format!("BREW{junk} /stats HTTP/1.1\r\n\r\n").into_bytes(),
            expect: Some(405),
        },
        MalformedCase {
            payload: format!("GET /no-such-{junk} HTTP/1.1\r\n\r\n").into_bytes(),
            expect: Some(404),
        },
        MalformedCase {
            payload: b"POST /stats HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(),
            expect: Some(405),
        },
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            expect: Some(400),
        },
        // A content-length larger than the server will ever read.
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n"
                .to_vec(),
            expect: Some(413),
        },
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
                .to_vec(),
            expect: Some(400),
        },
        MalformedCase {
            payload: b"GET /stats HTTP/1.1\r\nthis header has no colon\r\n\r\n".to_vec(),
            expect: Some(400),
        },
        MalformedCase { payload: b"GET /st\xffats HTTP/1.1\r\n\r\n".to_vec(), expect: Some(400) },
        // A header line past any sane cap.
        MalformedCase {
            payload: {
                let mut p = b"GET /".to_vec();
                p.extend(std::iter::repeat_n(junk as u8, 9000));
                p.extend_from_slice(b" HTTP/1.1\r\n\r\n");
                p
            },
            expect: Some(431),
        },
        // Bad CSV into a real route: rejected at the body parser (the
        // first line is the header, so the garbage row must come second).
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ncontent-length: 13\r\n\r\nhdr\nnot,a,csv"
                .to_vec(),
            expect: Some(400),
        },
        // Truncated mid-request-line, then hang up.
        MalformedCase { payload: b"GET /sta".to_vec(), expect: None },
        // A content-length that promises more than the client ever writes.
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ncontent-length: 50\r\n\r\nabc".to_vec(),
            expect: None,
        },
        // Partial headers, then hang up.
        MalformedCase {
            payload: b"POST /models/m/ingest HTTP/1.1\r\ncontent-le".to_vec(),
            expect: None,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every malformed request draws a typed 4xx (or a clean disconnect for
    /// truncations) and the server still answers `/healthz` and `/stats`
    /// afterwards — no panic, no wedged worker.
    #[test]
    fn malformed_requests_never_kill_the_server(
        case_idx in 0usize..16,
        filler in any::<u32>(),
    ) {
        let cases = malformed_cases(filler as u8);
        let case = &cases[case_idx % cases.len()];
        let addr = fuzz_server().addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.write_all(&case.payload).expect("write payload");
        match case.expect {
            Some(status) => {
                let reply = read_reply(&mut stream);
                prop_assert_eq!(
                    reply.status, status,
                    "payload {:?}: got {} {:?}",
                    String::from_utf8_lossy(&case.payload), reply.status, reply.body
                );
                prop_assert!(reply.kind.is_some(), "typed errors carry x-splash-error");
            }
            None => {
                // Truncation: hang up mid-request; the server must just
                // drop the connection.
                stream.shutdown(Shutdown::Write).ok();
            }
        }
        drop(stream);

        // Liveness probe on a fresh connection.
        let mut probe = Client::connect(addr);
        let reply = probe.request("GET", "/healthz", &[], "");
        prop_assert_eq!(reply.status, 200);
        let reply = probe.request("GET", "/stats", &[], "");
        prop_assert_eq!(reply.status, 200);
    }
}

// ---------------------------------------------------------------------------
// Backpressure, deadlines, histogram determinism.

/// A saturated queue sheds with `429 QueueFull`; every accepted request
/// completes; the shed counter matches the rejections exactly.
#[test]
fn saturated_queue_sheds_typed_rejections() {
    let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
    let cfg = ServerConfig {
        workers: 8,
        queue_depth: 2,
        deadline: Duration::from_secs(10),
        allow_test_delay: true,
        ..ServerConfig::default()
    };
    let handle = SplashServer::bind(service, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 8;
    let replies: Vec<(u16, Option<String>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    // The engine sleeps 150ms per request, so 8 concurrent
                    // requests against a depth-2 queue must overflow it.
                    let reply =
                        client.request("GET", "/stats", &[("x-splash-delay-ms", "150")], "");
                    (reply.status, reply.kind)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    let served = replies.iter().filter(|(s, _)| *s == 200).count();
    let shed = replies.iter().filter(|(s, _)| *s == 429).count();
    assert_eq!(served + shed, CLIENTS, "only 200 or 429 may come back: {replies:?}");
    assert!(served >= 1, "at least the in-flight request must complete");
    assert!(shed >= 1, "a depth-2 queue cannot absorb 8 concurrent slow requests");
    for (status, kind) in &replies {
        if *status == 429 {
            assert_eq!(kind.as_deref(), Some("QueueFull"));
        }
    }
    assert_eq!(handle.requests_shed(), shed as u64);

    // The shed counter lives in the shared telemetry registry, so every
    // surface reads the same cell: the rendered stats, the Prometheus
    // exposition, and the post-shutdown `ServiceStats` snapshot.
    let mut client = Client::connect(addr);
    let reply = client.request("GET", "/stats", &[], "");
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains(&format!("{shed} shed")), "{}", reply.body);
    let metrics = client.request("GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains(&format!("splash_requests_shed_total {shed}\n")),
        "{}",
        metrics.body
    );

    let service = handle.shutdown();
    let stats = service.stats();
    assert_eq!(stats.requests_shed, shed as u64);
    // Every executed request was timed: the slow ones plus the final probe.
    assert_eq!(stats.latency.count(), served as u64 + 1);
    assert_eq!(stats.deadlines_expired, 0);
}

/// A request that outlives its deadline is answered `504 DeadlineExpired`
/// without executing, and the service counts it.
#[test]
fn expired_deadline_is_typed_and_counted() {
    let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
    let cfg = ServerConfig {
        workers: 2,
        queue_depth: 8,
        deadline: Duration::from_millis(50),
        allow_test_delay: true,
        ..ServerConfig::default()
    };
    let handle = SplashServer::bind(service, "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr());

    let reply = client.request("GET", "/stats", &[("x-splash-delay-ms", "200")], "");
    assert_eq!((reply.status, reply.kind.as_deref()), (504, Some("DeadlineExpired")));

    // The next request is on time and sees the counter.
    let reply = client.request("GET", "/stats", &[], "");
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("1 past deadline"), "{}", reply.body);

    let service = handle.shutdown();
    let stats = service.stats();
    assert_eq!(stats.deadlines_expired, 1);
    assert_eq!(stats.latency.count(), 1, "an expired request must not be timed as served");
}

/// Percentiles of the fixed-bucket histogram are a pure function of the
/// recorded sequence — pinned against hand-computed bucket bounds.
#[test]
fn histogram_percentiles_are_deterministic() {
    let mut h = LatencyHistogram::default();
    assert_eq!((h.count(), h.p50_ns(), h.max_ns()), (0, 0, 0));

    for _ in 0..100 {
        h.record_ns(1_500); // bucket 1: bound 2_048
    }
    for _ in 0..10 {
        h.record_ns(1_000_000); // bucket 10: bound 1_048_576
    }
    h.record_ns(100_000_000); // bucket 17: bound 134_217_728

    assert_eq!(h.count(), 111);
    assert_eq!(h.p50_ns(), 2_048);
    assert_eq!(h.p99_ns(), 1_048_576);
    assert_eq!(h.p999_ns(), 134_217_728);
    assert_eq!(h.max_ns(), 100_000_000);
    assert_eq!(h.mean_ns(), (100 * 1_500 + 10 * 1_000_000 + 100_000_000) / 111);

    // Recording the same sequence again moves no percentile: the quantile
    // read is scale-invariant over bucket counts.
    let snapshot = h;
    for _ in 0..100 {
        h.record_ns(1_500);
    }
    for _ in 0..10 {
        h.record_ns(1_000_000);
    }
    h.record_ns(100_000_000);
    assert_eq!(
        (h.p50_ns(), h.p99_ns(), h.p999_ns()),
        (snapshot.p50_ns(), snapshot.p99_ns(), snapshot.p999_ns()),
    );

    // Sub-microsecond samples land in bucket 0.
    let mut tiny = LatencyHistogram::default();
    tiny.record_ns(0);
    tiny.record_ns(1_023);
    assert_eq!((tiny.count(), tiny.p50_ns(), tiny.p999_ns()), (2, 1_024, 1_024));
}

// ---------------------------------------------------------------------------
// Observability surface: /metrics, /statz.json, /trace, worker-direct probes.

/// The value of an unlabelled sample line in a Prometheus dump.
fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{exposition}"))
}

/// One `u64` field out of a flat JSON object/array body.
fn json_field(body: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\":");
    body.match_indices(&pat)
        .map(|(i, _)| {
            body[i + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("numeric json field")
        })
        .collect()
}

/// `GET /metrics` renders the same counters the stats snapshot carries —
/// one registry behind every surface — and worker-direct probes
/// (`/healthz`, `/metrics` itself) are counted without ever entering the
/// engine queue.
#[test]
fn metrics_exposition_agrees_with_stats() {
    let (dataset, cfg) = fixture();
    let mut service = trained_service(&dataset, &cfg, 2);
    let tail: Vec<TemporalEdge> = {
        let t_seen = seen_end_time(&dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        dataset.stream.edges()[prefix..prefix + 8].to_vec()
    };
    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t0 = tail.last().unwrap().time;

    let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    for _ in 0..3 {
        let reply = client.request("POST", "/models/live/predict", &[], &format!("3,{t0}\n"));
        assert_eq!(reply.status, 200, "{}", reply.body);
    }
    for _ in 0..2 {
        assert_eq!(client.request("GET", "/healthz", &[], "").status, 200);
    }

    let reply = client.request("GET", "/metrics", &[], "");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.ctype.as_deref(), Some("text/plain; version=0.0.4; charset=utf-8"));
    let body = &reply.body;
    assert!(body.contains("# TYPE splash_queries_served_total counter"), "{body}");
    assert!(body.contains("# TYPE splash_request_latency_seconds histogram"), "{body}");
    assert_eq!(metric_value(body, "splash_queries_served_total"), 3);
    assert_eq!(metric_value(body, "splash_edges_ingested_total"), 8);
    assert_eq!(metric_value(body, "splash_healthz_requests_total"), 2);
    assert_eq!(metric_value(body, "splash_models"), 1);
    assert_eq!(metric_value(body, "splash_shard_engines"), 2);
    // The per-shard series carry the model label; the queries land on the
    // owning shard, so the labelled series sum to the family total.
    for shard in 0..2 {
        assert!(
            body.contains(&format!("splash_shard_queries_total{{model=\"live\",shard=\"{shard}\"}}")),
            "{body}"
        );
    }
    let shard_queries: u64 = body
        .lines()
        .filter(|l| l.starts_with("splash_shard_queries_total{model=\"live\""))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(shard_queries, 3);

    // Worker-direct routes never enter the engine queue: the request
    // histogram only counts the 3 predicts, while the healthz probes have
    // their own (non-queued) histogram.
    let snapshot = handle.telemetry();
    assert_eq!(snapshot.request_latency.snapshot().count(), 3);
    assert_eq!(snapshot.healthz_latency.snapshot().count(), 2);

    // The post-shutdown stats snapshot reads the same registry cells.
    let service = handle.shutdown();
    let stats = service.stats();
    assert_eq!(stats.queries_served, 3);
    assert_eq!(stats.edges_ingested, 8);
    assert_eq!(stats.latency.count(), 3);
}

/// `GET /trace` separates queue-wait from engine-execute: a request
/// stalled behind a slow one shows its stall as queue time, not execute
/// time, and the slow one shows the inverse.
#[test]
fn trace_separates_queue_wait_from_execute() {
    let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
    let cfg = ServerConfig {
        workers: 4,
        queue_depth: 8,
        deadline: Duration::from_secs(10),
        allow_test_delay: true,
        ..ServerConfig::default()
    };
    let handle = SplashServer::bind(service, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let slow = scope.spawn(move || {
            let mut c = Client::connect(addr);
            c.request("GET", "/stats", &[("x-splash-delay-ms", "200")], "").status
        });
        // Arrive while the slow request holds the (single) engine thread.
        std::thread::sleep(Duration::from_millis(50));
        let fast = scope.spawn(move || {
            let mut c = Client::connect(addr);
            c.request("GET", "/stats", &[], "").status
        });
        assert_eq!(slow.join().unwrap(), 200);
        assert_eq!(fast.join().unwrap(), 200);
    });

    let mut client = Client::connect(addr);
    let reply = client.request("GET", "/trace?n=10", &[], "");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.ctype.as_deref(), Some("application/json"));
    let waits = json_field(&reply.body, "queue_wait_ns");
    let execs = json_field(&reply.body, "execute_ns");
    assert_eq!(waits.len(), 2, "{}", reply.body);
    // The injected delay sleeps before the deadline check, so it is
    // accounted as queue time — and the fast request genuinely queued
    // behind it. Both spans show their stall as queue-wait (the slow one
    // its full 200ms, the fast one the ~150ms left when it arrived) while
    // the /stats execution itself stays fast.
    assert!(waits.iter().all(|&ns| ns >= 100_000_000), "waits {waits:?}");
    assert!(execs.iter().all(|&ns| ns < 100_000_000), "execs {execs:?}");

    // Both spans carry the route and a 200 outcome.
    assert_eq!(reply.body.matches("\"route\":\"stats\"").count(), 2, "{}", reply.body);
    assert_eq!(reply.body.matches("\"outcome\":\"ok\"").count(), 2, "{}", reply.body);
    handle.shutdown();
}

/// `GET /statz.json?timing=0` is byte-deterministic: two servers fed the
/// identical request sequence produce identical bodies, because every
/// timing-dependent field is gated off.
#[test]
fn statz_json_is_byte_identical_with_timing_gated() {
    let dump = || {
        let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr());
        for _ in 0..3 {
            assert_eq!(client.request("GET", "/healthz", &[], "").status, 200);
        }
        assert_eq!(client.request("GET", "/stats", &[], "").status, 200);
        let gated = client.request("GET", "/statz.json?timing=0", &[], "");
        assert_eq!(gated.status, 200);
        assert_eq!(gated.ctype.as_deref(), Some("application/json"));
        let timed = client.request("GET", "/statz.json", &[], "");
        handle.shutdown();
        (gated.body, timed.body)
    };
    let (gated_a, timed_a) = dump();
    let (gated_b, _) = dump();
    assert_eq!(gated_a, gated_b, "timing-gated statz must be byte-identical across runs");
    assert!(!gated_a.contains("splash_request_latency_seconds"), "{gated_a}");
    assert!(timed_a.contains("splash_request_latency_seconds"), "{timed_a}");
    assert!(gated_a.contains("\"splash_healthz_requests_total\":3"), "{gated_a}");
}

/// Keep-alive and `connection: close` both work; a second request on a
/// kept-alive connection reuses the same socket.
#[test]
fn keep_alive_serves_sequential_requests() {
    let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
    let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.addr());
    for _ in 0..5 {
        let reply = client.request("GET", "/healthz", &[], "");
        assert_eq!((reply.status, reply.body.as_str()), (200, "ok\n"));
    }

    // connection: close is honored — the server hangs up after answering.
    let reply = client.request("GET", "/healthz", &[("connection", "close")], "");
    assert_eq!(reply.status, 200);
    let mut probe = [0u8; 1];
    client.stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(client.stream.read(&mut probe).unwrap_or(0), 0, "server must close the socket");

    handle.shutdown();
}
